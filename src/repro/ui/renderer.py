"""ASCII rendering of candidate tables, labels and grayed-out tuples.

The original JIM is a GUI application; this reproduction renders the same
information as text: the candidate table with ``+``/``−`` markers for labeled
tuples and a dimmed marker for tuples grayed out as uninformative — the
textual counterpart of the screenshots in Figure 3 of the paper.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..core.informativeness import TupleStatus
from ..core.state import InferenceState
from ..relational.candidate import CandidateTable

#: Marker shown in the leftmost column for each tuple status.
STATUS_MARKERS: dict[TupleStatus, str] = {
    TupleStatus.LABELED_POSITIVE: "+",
    TupleStatus.LABELED_NEGATIVE: "-",
    TupleStatus.CERTAIN_POSITIVE: "(+)",
    TupleStatus.CERTAIN_NEGATIVE: "(-)",
    TupleStatus.INFORMATIVE: "",
}


def _format_value(value: object) -> str:
    if value is None:
        return "∅"
    return str(value)


def render_table(
    table: CandidateTable,
    statuses: Mapping[int, TupleStatus] | None = None,
    tuple_ids: Sequence[int] | None = None,
    max_rows: int | None = 40,
    show_grayed_out: bool = True,
) -> str:
    """Render (part of) a candidate table with per-tuple status markers.

    Parameters
    ----------
    statuses:
        Optional mapping ``tuple_id → TupleStatus``; labeled tuples show
        ``+``/``−``, grayed-out tuples show ``(+)``/``(−)`` (or are hidden when
        ``show_grayed_out`` is false), informative tuples show no marker.
    tuple_ids:
        Restrict the rendering to these tuples (defaults to all of them).
    max_rows:
        Truncate the rendering after this many rows (``None`` = no limit).
    """
    ids = list(tuple_ids) if tuple_ids is not None else list(table.tuple_ids)
    if statuses is not None and not show_grayed_out:
        ids = [tid for tid in ids if not statuses.get(tid, TupleStatus.INFORMATIVE).is_certain]
    truncated = 0
    if max_rows is not None and len(ids) > max_rows:
        truncated = len(ids) - max_rows
        ids = ids[:max_rows]

    headers = ["", "#", *table.attribute_names]
    rows: list[list[str]] = []
    for tuple_id in ids:
        status = statuses.get(tuple_id, TupleStatus.INFORMATIVE) if statuses else None
        marker = STATUS_MARKERS[status] if status is not None else ""
        rows.append(
            [marker, f"({tuple_id + 1})", *(_format_value(v) for v in table.row(tuple_id))]
        )

    widths = [len(header) for header in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths, strict=True)).rstrip()

    lines = [format_row(headers), format_row(["-" * width for width in widths])]
    lines.extend(format_row(row) for row in rows)
    if truncated:
        lines.append(f"… {truncated} more tuple(s) not shown")
    return "\n".join(lines)


def render_state(
    state: InferenceState,
    max_rows: int | None = 40,
    show_grayed_out: bool = True,
) -> str:
    """Render the candidate table of an inference state with its current statuses."""
    header = render_table(
        state.table,
        statuses=state.statuses(),
        max_rows=max_rows,
        show_grayed_out=show_grayed_out,
    )
    stats = state.statistics()
    footer = (
        f"labeled: {stats['labeled']:.0f} ({stats['labeled_pct']:.0f}%)   "
        f"grayed out: {stats['uninformative']:.0f} ({stats['uninformative_pct']:.0f}%)   "
        f"informative: {stats['informative']:.0f} ({stats['informative_pct']:.0f}%)"
    )
    query = f"current candidate query: {state.inferred_query().describe()}"
    return "\n".join([header, "", footer, query])


def render_bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    unit: str = "",
) -> str:
    """A horizontal ASCII bar chart (used for the Figure 4 style comparisons)."""
    if not values:
        return "(no data)"
    maximum = max(values.values()) or 1.0
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        bar_length = int(round(width * value / maximum)) if maximum else 0
        bar = "█" * bar_length
        suffix = f" {value:g}{unit}"
        lines.append(f"{label.ljust(label_width)} |{bar}{suffix}")
    return "\n".join(lines)
