"""Console demo driver: the terminal stand-in for the JIM GUI.

``run_console_demo`` drives a fully guided session (interaction type 4) at the
terminal: it prints the candidate table, repeatedly shows the most informative
tuple, reads a ``y``/``n`` answer, shows what got grayed out, and finally
prints the inferred query.  ``run_scripted_demo`` does the same against an
oracle and returns the transcript as a string, which is what the tests and the
examples use (no interactive input needed).
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from ..core.oracle import ConsoleOracle, Oracle
from ..core.queries import JoinQuery
from ..core.strategies.base import Strategy
from ..relational.candidate import CandidateTable
from ..sessions.modes import GuidedSession
from .renderer import render_state, render_table

Printer = Callable[[str], None]


def run_scripted_demo(
    table: CandidateTable,
    oracle: Oracle,
    strategy: Union[Strategy, str, None] = None,
    max_interactions: Optional[int] = None,
    show_table_every_step: bool = False,
) -> tuple[JoinQuery, str]:
    """Run a guided session against an oracle and return (query, transcript)."""
    lines: list[str] = []

    def emit(text: str) -> None:
        lines.append(text)

    query = _drive(table, oracle, strategy, emit, max_interactions, show_table_every_step)
    return query, "\n".join(lines)


def run_console_demo(
    table: CandidateTable,
    strategy: Union[Strategy, str, None] = None,
    max_interactions: Optional[int] = None,
) -> JoinQuery:
    """Run a guided session interactively at the terminal (blocking on input)."""
    return _drive(table, ConsoleOracle(), strategy, print, max_interactions, False)


def _drive(
    table: CandidateTable,
    oracle: Oracle,
    strategy: Union[Strategy, str, None],
    emit: Printer,
    max_interactions: Optional[int],
    show_table_every_step: bool,
) -> JoinQuery:
    session = GuidedSession(table, strategy=strategy)
    emit("=== JIM: interactive join query inference ===")
    emit(render_table(table, max_rows=20))
    emit("")
    while not session.is_converged():
        if max_interactions is not None and session.num_interactions >= max_interactions:
            emit(f"stopping after {max_interactions} interactions (not converged)")
            break
        tuple_id = session.next_tuple()
        rendered = ", ".join(
            f"{name}={value!r}" for name, value in zip(table.attribute_names, table.row(tuple_id))
        )
        emit(f"[{session.num_interactions + 1}] label tuple ({tuple_id + 1}): {rendered}")
        label = oracle.label(table, tuple_id)
        propagation = session.answer(label)
        emit(f"    answer: {label.value}   {propagation.summary()}")
        if show_table_every_step:
            emit(render_state(session.state, max_rows=20))
            emit("")
    query = session.inferred_query()
    emit("")
    emit(f"inferred join query: {query.describe()}")
    emit(f"membership queries asked: {session.num_interactions}")
    emit(session.statistics().summary())
    return query
