"""Console demo driver: the terminal stand-in for the JIM GUI.

``run_console_demo`` drives a fully guided session (interaction type 4) at the
terminal: it prints the candidate table, repeatedly shows the most informative
tuple, reads a ``y``/``n`` answer, shows what got grayed out, and finally
prints the inferred query.  ``run_scripted_demo`` does the same against an
oracle and returns the transcript as a string, which is what the tests and the
examples use (no interactive input needed).

Both are adapters over the sans-IO stepper: the loop below consumes
:class:`~repro.service.protocol.QuestionAsked` events — which carry the row
to render — answers them via the oracle, and feeds the labels back with
``submit``.  It is the same protocol conversation the HTTP demo has, printed
instead of serialised.
"""

from __future__ import annotations

from collections.abc import Callable

from ..core.oracle import ConsoleOracle, Oracle
from ..core.queries import JoinQuery
from ..core.strategies.base import Strategy
from ..relational.candidate import CandidateTable
from ..service.stepper import InferenceSession
from ..sessions.statistics import SessionStatistics
from .renderer import render_state, render_table

Printer = Callable[[str], None]


def run_scripted_demo(
    table: CandidateTable,
    oracle: Oracle,
    strategy: Strategy | str | None = None,
    max_interactions: int | None = None,
    show_table_every_step: bool = False,
) -> tuple[JoinQuery, str]:
    """Run a guided session against an oracle and return (query, transcript)."""
    lines: list[str] = []

    def emit(text: str) -> None:
        lines.append(text)

    query = _drive(table, oracle, strategy, emit, max_interactions, show_table_every_step)
    return query, "\n".join(lines)


def run_console_demo(
    table: CandidateTable,
    strategy: Strategy | str | None = None,
    max_interactions: int | None = None,
) -> JoinQuery:
    """Run a guided session interactively at the terminal (blocking on input)."""
    return _drive(table, ConsoleOracle(), strategy, print, max_interactions, False)


def _drive(
    table: CandidateTable,
    oracle: Oracle,
    strategy: Strategy | str | None,
    emit: Printer,
    max_interactions: int | None,
    show_table_every_step: bool,
) -> JoinQuery:
    session = InferenceSession(table, mode="guided", strategy=strategy)
    emit("=== JIM: interactive join query inference ===")
    emit(render_table(table, max_rows=20))
    emit("")
    while not session.is_converged():
        if max_interactions is not None and session.num_interactions >= max_interactions:
            emit(f"stopping after {max_interactions} interactions (not converged)")
            break
        event = session.next_question()
        rendered = ", ".join(
            f"{name}={value!r}" for name, value in zip(event.attributes, event.row, strict=True)
        )
        emit(f"[{event.step}] label tuple ({event.tuple_id + 1}): {rendered}")
        label = oracle.label(table, event.tuple_id)
        session.submit(label)
        emit(f"    answer: {label.value}   {session.last_propagation().summary()}")
        if show_table_every_step:
            emit(render_state(session.state, max_rows=20))
            emit("")
    query = session.inferred_query()
    emit("")
    emit(f"inferred join query: {query.describe()}")
    emit(f"membership queries asked: {session.num_interactions}")
    emit(SessionStatistics.from_state(session.state).summary())
    return query
