"""Baselines JIM is compared against in the experiments.

* :mod:`repro.baselines.label_all` — labeling every candidate tuple;
* :mod:`repro.baselines.random_order` — an unguided user labeling tuples in a
  random order (with or without the system graying out uninformative tuples);
* :mod:`repro.baselines.entity_resolution` — pairwise crowdsourced joins
  (entity-resolution style), the related-work comparison of Section 1.
"""

from .entity_resolution import CrowdJoinResult, PairwiseCrowdJoin, pairwise_question_count
from .label_all import ExhaustiveLabelingResult, exhaustive_inference, label_all_interactions
from .random_order import RandomOrderBaseline, RandomOrderResult

__all__ = [
    "CrowdJoinResult",
    "ExhaustiveLabelingResult",
    "PairwiseCrowdJoin",
    "RandomOrderBaseline",
    "RandomOrderResult",
    "exhaustive_inference",
    "label_all_interactions",
    "pairwise_question_count",
]
