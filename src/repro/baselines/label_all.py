"""The label-everything baseline.

The demo's first message is that "by using an interactive approach, Jim saves
a lot of effort in specifying join queries": without JIM the user would have
to look at (and effectively label) *every* tuple of the candidate table.  This
baseline quantifies that effort — it asks the oracle about every single tuple
and infers the query from the complete labeling.  By construction it converges
whenever any approach can, and its interaction count equals the table size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.oracle import Oracle
from ..core.queries import JoinQuery
from ..core.state import InferenceState
from ..relational.candidate import CandidateTable


@dataclass(frozen=True)
class ExhaustiveLabelingResult:
    """Outcome of labeling every candidate tuple."""

    query: JoinQuery
    num_interactions: int
    converged: bool

    def as_dict(self) -> dict[str, object]:
        """Plain-dictionary form for experiment logging."""
        return {
            "query": self.query.describe(),
            "num_interactions": self.num_interactions,
            "converged": self.converged,
        }


def label_all_interactions(table: CandidateTable) -> int:
    """The number of interactions the exhaustive approach costs (= table size)."""
    return len(table)


def exhaustive_inference(table: CandidateTable, oracle: Oracle) -> ExhaustiveLabelingResult:
    """Label every tuple and return the query inferred from the full labeling."""
    state = InferenceState(table)
    for tuple_id in table.tuple_ids:
        state.add_label(tuple_id, oracle.label(table, tuple_id))
    return ExhaustiveLabelingResult(
        query=state.inferred_query(),
        num_interactions=len(table),
        converged=state.is_converged(),
    )
