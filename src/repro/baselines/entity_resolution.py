"""Pairwise crowdsourced-join baseline (entity-resolution style).

The paper positions JIM against crowdsourced join systems (Marcus et al.,
Wang et al.) that "have been mainly defined in terms of entity resolution,
where joining two datasets means finding all pairs of tuples that refer to the
same entity".  Those systems ask the crowd about *pairs of tuples* — in the
worst case every pair — whereas JIM asks membership questions only about
informative tuples and infers an intensional join predicate.

This module models that pairwise approach so the crowdsourcing-cost experiment
(E9) can compare question counts:

* :func:`pairwise_question_count` — the naive all-pairs cost;
* :class:`PairwiseCrowdJoin` — asks the oracle about every candidate pair,
  optionally exploiting transitivity of the match relation (the optimisation
  of Wang et al.) to skip questions whose answer is already implied.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.examples import Label
from ..core.oracle import Oracle
from ..relational.candidate import CandidateTable


def pairwise_question_count(left_size: int, right_size: int) -> int:
    """Questions a naive pairwise crowd join asks: one per pair of tuples."""
    if left_size < 0 or right_size < 0:
        raise ValueError("relation sizes must be non-negative")
    return left_size * right_size


@dataclass(frozen=True)
class CrowdJoinResult:
    """Outcome of a pairwise crowd join over a candidate table."""

    matching_pairs: frozenset[int]
    questions_asked: int
    questions_saved_by_transitivity: int

    @property
    def total_pairs(self) -> int:
        """Number of candidate pairs that had to be resolved."""
        return self.questions_asked + self.questions_saved_by_transitivity

    def as_dict(self) -> dict[str, object]:
        """Plain-dictionary form for experiment logging."""
        return {
            "matching_pairs": len(self.matching_pairs),
            "questions_asked": self.questions_asked,
            "questions_saved_by_transitivity": self.questions_saved_by_transitivity,
        }


class PairwiseCrowdJoin:
    """Asks the crowd (oracle) about every candidate pair, à la crowd ER joins.

    Each row of the candidate table is one pair of tuples from the two input
    relations; the baseline asks the oracle to label each of them.  With
    ``use_transitivity`` the match relation is assumed to be transitive (as in
    entity resolution) and questions whose answer follows from previously
    confirmed matches via shared left/right tuples are skipped — this is the
    strongest reasonable version of the baseline and JIM still needs far fewer
    questions because it reasons about the join *predicate*, not about pairs.
    """

    def __init__(self, use_transitivity: bool = False) -> None:
        self.use_transitivity = use_transitivity

    def run(
        self,
        table: CandidateTable,
        oracle: Oracle,
        left_key_attributes: tuple[str, ...] = (),
        right_key_attributes: tuple[str, ...] = (),
    ) -> CrowdJoinResult:
        """Resolve every pair, optionally propagating matches transitively.

        ``left_key_attributes`` / ``right_key_attributes`` identify the
        columns that determine the left and the right tuple of each pair;
        they are only needed when ``use_transitivity`` is on.
        """
        matches: set[int] = set()
        questions = 0
        saved = 0
        # Union-find over the entities seen so far (only with transitivity).
        parent: dict[object, object] = {}

        def find(node: object) -> object:
            parent.setdefault(node, node)
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        def union(a: object, b: object) -> None:
            parent[find(a)] = find(b)

        def keys_of(tuple_id: int) -> tuple[object, object]:
            left = ("L",) + tuple(table.value(tuple_id, attr) for attr in left_key_attributes)
            right = ("R",) + tuple(table.value(tuple_id, attr) for attr in right_key_attributes)
            return left, right

        for tuple_id in table.tuple_ids:
            if self.use_transitivity and left_key_attributes and right_key_attributes:
                left, right = keys_of(tuple_id)
                if find(left) == find(right):
                    matches.add(tuple_id)
                    saved += 1
                    continue
            answer = oracle.label(table, tuple_id)
            questions += 1
            if answer is Label.POSITIVE:
                matches.add(tuple_id)
                if self.use_transitivity and left_key_attributes and right_key_attributes:
                    left, right = keys_of(tuple_id)
                    union(left, right)
        return CrowdJoinResult(
            matching_pairs=frozenset(matches),
            questions_asked=questions,
            questions_saved_by_transitivity=saved,
        )
