"""The unguided user baseline: labeling tuples in an arbitrary order.

Interaction type 1 of the demo lets the attendee "choose the tuples that she
wants to label as positive and negative examples, in any order she prefers";
an attendee with no insight into informativeness is modelled here as labeling
uniformly random tuples (optionally *any* tuple, including ones that are
already uninformative) until the labels identify a unique query.  The gap
between this baseline and the guided strategies is exactly what Figure 4 of
the paper visualises.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.oracle import Oracle
from ..core.queries import JoinQuery
from ..core.state import InferenceState
from ..relational.candidate import CandidateTable


@dataclass(frozen=True)
class RandomOrderResult:
    """Outcome of an unguided random-order labeling session."""

    query: JoinQuery
    num_interactions: int
    converged: bool
    wasted_interactions: int
    """Labels spent on tuples that were already uninformative when labeled."""

    def as_dict(self) -> dict[str, object]:
        """Plain-dictionary form for experiment logging."""
        return {
            "query": self.query.describe(),
            "num_interactions": self.num_interactions,
            "converged": self.converged,
            "wasted_interactions": self.wasted_interactions,
        }


class RandomOrderBaseline:
    """Simulates an attendee labeling random tuples until convergence.

    ``informed_pruning`` corresponds to interaction type 2 (the system grays
    out uninformative tuples, so the attendee never wastes a label on them);
    without it the attendee may label uninformative tuples, which is the
    fully unassisted interaction type 1.
    """

    def __init__(self, seed: int | None = None, informed_pruning: bool = False) -> None:
        self.seed = seed
        self.informed_pruning = informed_pruning

    def run(
        self,
        table: CandidateTable,
        oracle: Oracle,
        max_interactions: int | None = None,
    ) -> RandomOrderResult:
        """Label random tuples until the query is identified (or the cap is hit)."""
        rng = random.Random(self.seed)
        state = InferenceState(table)
        order = list(table.tuple_ids)
        rng.shuffle(order)
        interactions = 0
        wasted = 0
        for tuple_id in order:
            if state.is_converged():
                break
            if max_interactions is not None and interactions >= max_interactions:
                break
            status = state.status(tuple_id)
            if status.is_labeled:
                continue
            if status.is_certain:
                if self.informed_pruning:
                    continue
                wasted += 1
            state.add_label(tuple_id, oracle.label(table, tuple_id))
            interactions += 1
        return RandomOrderResult(
            query=state.inferred_query(),
            num_interactions=interactions,
            converged=state.is_converged(),
            wasted_interactions=wasted,
        )
