"""The cluster worker: one ``SessionService`` behind a framed socket.

A worker is nothing but a loop — :func:`serve_connection` — that reads wire
commands off one :class:`~repro.service.transport.FramedConnection`, applies
them to a private :class:`~repro.service.service.SessionService`, and writes
replies back.  The same loop serves all three deployment shapes:

* **in-process** — the cluster's ``backend="thread"`` runs it on a thread
  over a socketpair (:func:`~repro.service.transport.framed_pair`);
* **local process** — ``backend="process"`` spawns :func:`worker_entry`,
  which dials back to the supervisor's listener;
* **remote machine** — ``python -m repro.service.worker --connect HOST:PORT
  --token TOKEN`` joins a cluster built with ``backend="external"`` from
  anywhere the listener is reachable.

Write-through documents
-----------------------
The worker's service is constructed with a ``document_sink``, so every
state-changing command (create / resume / answer / answer_many) re-serialises
the touched session as a durable v3 persistence document.  The documents
collected during a command ride back to the supervisor on the reply —
*including error replies*, because a failed strict batch may still have
applied a prefix of its labels.  That piggyback is what makes worker death
survivable: the supervisor always holds a document no older than the last
acknowledged command, and replaying it onto a fresh worker reconstructs the
session exactly (replay is label-driven and the strategies are
deterministic).

The hello frame
---------------
A worker's first frame is ``{"hello": "repro-worker", "token": …, "pid": …}``.
The token — handed out by the supervisor when it spawns (or registers) the
worker — is how the supervisor matches an inbound connection to the worker
slot it belongs to; a hello with an unknown token is stashed or dropped, so
a stray client cannot occupy a slot.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

from .service import SessionService
from .transport import (
    DEFAULT_MAX_FRAME_BYTES,
    FramedConnection,
    TransportError,
    connect,
)
from .wire import error_reply, execute_command

#: The ``hello`` field every worker announces itself with.
HELLO_KIND = "repro-worker"


def serve_connection(conn: FramedConnection) -> None:
    """Serve one supervisor connection until it closes or says ``shutdown``.

    The loop is serial — one command at a time — which is the worker's whole
    concurrency model: the supervisor holds one in-flight command per worker
    and schedules across workers.  Transport failures (EOF when the
    supervisor dies, a corrupt frame) end the loop; they are the
    supervisor's problem to notice, not the worker's to repair.
    """
    documents: dict[str, dict] = {}
    service = SessionService(document_sink=documents.__setitem__)
    try:
        while True:
            try:
                request = conn.recv()
            except TransportError:
                break  # supervisor gone or stream corrupt; nothing left to serve
            if not isinstance(request, dict):
                break
            if request.get("cmd") == "shutdown":
                try:
                    conn.send({"status": "ok", "result": None})
                except TransportError:
                    pass
                break
            documents.clear()
            try:
                reply: dict[str, object] = {
                    "status": "ok",
                    "result": execute_command(service, request),
                }
            except Exception as exc:
                reply = error_reply(exc)
            if documents:
                # The write-through piggyback: every document this command
                # touched, even on error (a strict batch may have applied a
                # prefix before failing).
                reply["documents"] = dict(documents)
            try:
                conn.send(reply)
            except TransportError:
                break
    finally:
        conn.close()


def worker_entry(
    address: tuple[str, int],
    token: str,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    """Dial a supervisor, introduce ourselves, and serve.  (Spawn target.)

    Retries the dial briefly — the supervisor's listener is bound before any
    worker starts, but a reconnecting external worker may race a supervisor
    restart.
    """
    # The with-block guarantees the socket closes even when the hello send
    # raises; close is idempotent, so serve_connection's own finally-close
    # and this one compose (RPR012).
    with connect(
        address, retries=25, retry_delay=0.2, max_frame_bytes=max_frame_bytes
    ) as conn:
        conn.send({"hello": HELLO_KIND, "token": token, "pid": os.getpid()})
        serve_connection(conn)


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.service.worker``: join a cluster over the network."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.worker",
        description="Run one cluster worker process against a remote supervisor.",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="the supervisor's listener address (ClusterSessionService(listen=...))",
    )
    parser.add_argument(
        "--token",
        required=True,
        help="the cluster's worker token (ClusterSessionService.worker_token)",
    )
    parser.add_argument(
        "--max-frame-bytes",
        type=int,
        default=DEFAULT_MAX_FRAME_BYTES,
        help="per-frame size limit; must match the supervisor's",
    )
    args = parser.parse_args(argv)
    host, _, port_text = args.connect.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        parser.error(f"--connect needs HOST:PORT, got {args.connect!r}")
    try:
        worker_entry((host or "127.0.0.1", port), args.token, args.max_frame_bytes)
    except TransportError as exc:
        print(f"worker: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
