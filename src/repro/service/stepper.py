"""The sans-IO stepper: the inference loop with the control flow inverted.

:class:`InferenceSession` is the pure state machine behind every interactive
surface of the library.  Instead of handing the engine a blocking
:class:`~repro.core.oracle.Oracle` callback, the *caller* drives the loop::

    session = InferenceSession(table, strategy="lookahead-entropy")
    while True:
        event = session.next_question()
        if isinstance(event, Converged):
            break
        answer = ...  # ask a human, an HTTP client, a crowd worker, ...
        session.submit(answer)
    print(session.inferred_query().describe())

The session performs no I/O whatsoever — it only turns commands
(:meth:`next_question`, :meth:`submit`, :meth:`submit_many`) into protocol
events (:class:`~repro.service.protocol.QuestionAsked`,
:class:`~repro.service.protocol.LabelApplied`, …), which makes it trivially
embeddable in a thread-per-request web server, an asyncio loop, a GUI, or a
test harness.  The blocking surfaces (``JoinInferenceEngine.run``, the
``sessions.modes`` classes, the console demo) are thin adapters over it.

A session covers all four interaction types of the demonstration scenario via
``mode``: guided (one strategy-chosen question at a time), top-k (a ranked
batch per round), and the two manual modes (the user labels whatever she
wants, with or without graying out).  The underlying
:class:`~repro.core.state.InferenceState` is driven polymorphically, so a
caller may supply a custom state subclass (the benchmarks use this to measure
the seed implementation through the identical driver).
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Mapping

from ..core.engine import InferenceTrace, Interaction
from ..core.examples import Label
from ..core.propagation import PropagationResult
from ..core.queries import JoinQuery
from ..core.state import InferenceState
from ..core.strategies.base import Strategy
from ..core.strategies.lookahead import EntropyStrategy
from ..core.strategies.registry import create_strategy
from ..exceptions import StrategyError
from ..relational.candidate import CandidateTable
from .protocol import (
    BatchQuestionsAsked,
    Event,
    InteractionMode,
    LabelApplied,
    QuestionAsked,
    converged_event,
)

LabelLike = Label | str | bool
AnswerSet = Mapping[int, LabelLike] | Iterable[tuple[int, LabelLike]]

#: Options each interaction mode accepts (beyond ``table``/``state``).
MODE_OPTIONS: dict[InteractionMode, frozenset[str]] = {
    InteractionMode.MANUAL: frozenset(),
    InteractionMode.MANUAL_WITH_PRUNING: frozenset(),
    InteractionMode.TOP_K: frozenset({"k"}),
    InteractionMode.GUIDED: frozenset({"strategy"}),
}

#: Default batch size of top-k sessions.
DEFAULT_K = 5


def parse_mode(mode: InteractionMode | str) -> InteractionMode:
    """Coerce a mode name to :class:`InteractionMode` (clear error on typos)."""
    if isinstance(mode, InteractionMode):
        return mode
    try:
        return InteractionMode(mode)
    except ValueError as exc:
        known = ", ".join(m.value for m in InteractionMode)
        raise ValueError(f"unknown interaction mode {mode!r}; known modes: {known}") from exc


def validate_mode_options(
    mode: InteractionMode | str, options: Mapping[str, object]
) -> InteractionMode:
    """Check that ``options`` only contains settings ``mode`` understands.

    Raises :class:`ValueError` naming the mode for unknown options (e.g.
    passing ``k`` to a guided session), and :class:`StrategyError` for values
    that are recognised but invalid (e.g. ``k < 1``).  Options set to ``None``
    count as "not given".
    """
    parsed = parse_mode(mode)
    allowed = MODE_OPTIONS[parsed]
    given = {name for name, value in options.items() if value is not None}
    unknown = sorted(given - allowed)
    if unknown:
        extras = ", ".join(repr(name) for name in unknown)
        accepted = ", ".join(sorted(allowed)) or "no options"
        raise ValueError(
            f"session mode {parsed.value!r} does not accept {extras} "
            f"(accepted: {accepted})"
        )
    k = options.get("k")
    if k is not None:
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise StrategyError(f"k must be a positive integer, got {k!r}")
    return parsed


class InferenceSession:
    """Sans-IO stepper for one interactive join-inference session.

    Parameters
    ----------
    table:
        The candidate table the membership questions are about.
    mode:
        One of the four :class:`~repro.service.protocol.InteractionMode`\\ s
        (default: guided).
    strategy:
        Tuple-choice strategy (guided mode only) — an instance, a registry
        name, or ``None`` for the default entropy lookahead.
    k:
        Batch size (top-k mode only).
    state:
        Continue from an existing :class:`~repro.core.state.InferenceState`
        instead of a fresh one.  The state object is driven as-is (its
        ``add_label`` / ``has_informative_tuple`` / … methods are called
        polymorphically) and is shared with the caller, not copied.
    strict:
        Whether contradicting labels raise (forwarded to a fresh state).

    Thread-safety: a session is a plain state machine with **no internal
    locking** — drive it from one thread (or one asyncio task) at a time.
    :class:`~repro.service.service.SessionService` adds the per-session lock
    for multi-threaded frontends;
    :class:`~repro.service.aio.AsyncSessionService` does the same for
    asyncio.  Raises :class:`ValueError` /
    :class:`~repro.exceptions.StrategyError` at construction for options the
    mode does not accept (see :func:`validate_mode_options`) and
    :class:`~repro.exceptions.StrategyError` for an unknown strategy name.
    """

    def __init__(
        self,
        table: CandidateTable,
        mode: InteractionMode | str = InteractionMode.GUIDED,
        strategy: Strategy | str | None = None,
        k: int | None = None,
        state: InferenceState | None = None,
        strict: bool = True,
    ) -> None:
        self.mode = validate_mode_options(mode, {"strategy": strategy, "k": k})
        self.table = table
        self.state = state if state is not None else InferenceState(table, strict=strict)
        self.trace = InferenceTrace()
        self.k = k if k is not None else DEFAULT_K
        if isinstance(strategy, str):
            self.strategy: Strategy = create_strategy(strategy)
        elif strategy is not None:
            self.strategy = strategy
        else:
            self.strategy = EntropyStrategy()
        # The entropy ranking used by top-k batches (independent of
        # ``strategy``, which is a guided-mode option).
        self._scorer = EntropyStrategy()
        self._pending: int | None = None
        self._choose_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Commands
    # ------------------------------------------------------------------ #
    def is_converged(self) -> bool:
        """Whether the labels given so far identify a unique query."""
        return not self.state.has_informative_tuple()

    def _drop_stale_pending(self) -> None:
        """Forget the pending guided question if it can no longer teach us.

        A label submitted with an explicit tuple_id (batch answering a guided
        session, e.g. through the crowd dispatcher) may have labeled or
        grayed out the pending question; proposing or answering it would
        waste the question on a tuple whose label is already certain.
        """
        if self._pending is not None and self.state.status(self._pending).is_uninformative:
            self._pending = None
            self._choose_seconds = 0.0

    def _labels_in_state(self) -> int:
        """Total labels the session carries, including restored ones.

        Protocol event ``step``\\ s count from here so a session resumed from
        a saved document keeps numbering where it left off; the *trace* counts
        this sitting only (matching the engine's historical semantics).
        """
        return len(self.state.examples)

    def next_question(self) -> Event:
        """What the system asks next.

        Returns :class:`~repro.service.protocol.Converged` once the session
        has converged; otherwise a
        :class:`~repro.service.protocol.QuestionAsked` (guided mode — stable
        until answered, unless an out-of-band label made the pending tuple
        uninformative, in which case a fresh question is chosen) or a
        :class:`~repro.service.protocol.BatchQuestionsAsked` (top-k and
        manual modes).

        Raises :class:`~repro.exceptions.StrategyError` when the strategy
        cannot choose a tuple (the session is left unchanged).
        """
        if self.is_converged():
            return converged_event(self._labels_in_state(), self.state.inferred_query())
        step = self._labels_in_state() + 1
        if self.mode is InteractionMode.GUIDED:
            self._drop_stale_pending()
            if self._pending is None:
                started = time.perf_counter()
                self._pending = self.strategy.choose(self.state)
                self._choose_seconds = time.perf_counter() - started
            return QuestionAsked(
                step=step,
                tuple_id=self._pending,
                attributes=self.table.attribute_names,
                row=tuple(self.table.row(self._pending)),
            )
        if self.mode is InteractionMode.TOP_K:
            return BatchQuestionsAsked(
                step=step, tuple_ids=tuple(self.propose_batch()), k=self.k
            )
        return BatchQuestionsAsked(
            step=step, tuple_ids=tuple(self.labelable_ids()), k=None
        )

    def submit(
        self,
        label: LabelLike,
        tuple_id: int | None = None,
        oracle_seconds: float = 0.0,
    ) -> LabelApplied:
        """Apply one label and return the resulting event.

        Without ``tuple_id`` the label answers the pending guided question
        (choosing it first if :meth:`next_question` was not called).  With an
        explicit ``tuple_id`` — required in the batch and manual modes — the
        label applies to that tuple and a pending guided question, if any,
        stays pending (mirroring the historical session semantics).
        ``oracle_seconds`` is recorded as answer think-time in the trace.

        Raises :class:`~repro.exceptions.StrategyError` when a batch/manual
        session is answered without ``tuple_id`` — or when the pending
        guided question was resolved by out-of-band labels in the meantime
        (the answer would be misattributed; fetch a fresh question instead) —
        and :class:`~repro.exceptions.InconsistentLabelError` for a label
        :meth:`~repro.core.examples.Label.from_value` cannot parse or one
        that contradicts the labels before on a strict session (the state is
        unchanged in every error case).
        """
        answered_pending = tuple_id is None
        if tuple_id is None:
            if self.mode is not InteractionMode.GUIDED:
                raise StrategyError(
                    f"a {self.mode.value!r} session needs an explicit tuple_id to label"
                )
            stale = self._pending
            self._drop_stale_pending()
            if stale is not None and self._pending is None:
                # The caller is answering a question that other labels have
                # already resolved; applying their answer to a different,
                # freshly chosen tuple would misattribute it.
                raise StrategyError(
                    f"the pending question (tuple {stale}) was resolved by other labels; "
                    "call next_question() for a fresh question"
                )
            if self._pending is None:
                started = time.perf_counter()
                self._pending = self.strategy.choose(self.state)
                self._choose_seconds = time.perf_counter() - started
            tuple_id = self._pending
        parsed = Label.from_value(label)
        choose_seconds = self._choose_seconds if answered_pending else 0.0
        started = time.perf_counter()
        propagation = self.state.add_label(tuple_id, parsed)
        elapsed = choose_seconds + (time.perf_counter() - started)
        if answered_pending:
            self._pending = None
            self._choose_seconds = 0.0
        self.trace.propagations.append(propagation)
        self.trace.interactions.append(
            Interaction(
                step=self.num_interactions + 1,
                tuple_id=tuple_id,
                label=parsed,
                pruned=propagation.pruned_count,
                informative_remaining=propagation.informative_after,
                elapsed_seconds=elapsed,
                oracle_seconds=oracle_seconds,
            )
        )
        return LabelApplied(
            step=self._labels_in_state(),
            tuple_id=tuple_id,
            label=parsed,
            pruned=propagation.pruned_count,
            informative_remaining=propagation.informative_after,
        )

    def submit_many(self, answers: AnswerSet) -> list[LabelApplied]:
        """Apply a batch of ``tuple_id -> label`` answers.

        Tuples that became uninformative through earlier labels of the same
        batch are skipped (the batch-labeling semantics of the top-k mode),
        as are tuples already labeled.

        Exceptions as for :meth:`submit`; on error, answers applied earlier
        in the batch stay applied, the failing answer and everything after
        it do not.  The events of those already-applied answers are attached
        to the raised exception as ``applied_events`` so a caller relaying
        events (e.g. to a stream) can still report them.
        """
        pairs = answers.items() if isinstance(answers, Mapping) else answers
        events: list[LabelApplied] = []
        for tuple_id, label in pairs:
            if self.state.status(tuple_id).is_uninformative:
                continue
            try:
                events.append(self.submit(label, tuple_id=tuple_id))
            except Exception as exc:
                exc.applied_events = tuple(events)
                raise
        return events

    # ------------------------------------------------------------------ #
    # Mode-specific views
    # ------------------------------------------------------------------ #
    def propose_batch(self, k: int | None = None) -> list[int]:
        """The current top-k informative tuples, best first (top-k mode).

        Returns fewer than ``k`` ids (possibly none) when fewer informative
        tuples remain; never raises.
        """
        batch_size = k if k is not None else self.k
        candidates = self.state.informative_ids()
        counts = self.state.prune_counts_all(candidates)
        scored = sorted(
            candidates,
            key=lambda tid: (self._scorer.score(*counts[tid]), -tid),
            reverse=True,
        )
        return scored[:batch_size]

    def labelable_ids(self) -> list[int]:
        """The tuples the user may label next (manual modes).

        Plain manual sessions offer every unlabeled tuple; with pruning
        (and in the system-driven modes) only the informative ones.
        """
        if self.mode is InteractionMode.MANUAL:
            labeled = self.state.labeled_ids()
            return [tid for tid in self.table.tuple_ids if tid not in labeled]
        return self.state.informative_ids()

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    @property
    def num_interactions(self) -> int:
        """Number of labels applied so far."""
        return len(self.trace.interactions)

    @property
    def interactions(self) -> list[Interaction]:
        """The recorded interactions (shared with :attr:`trace`)."""
        return self.trace.interactions

    def inferred_query(self) -> JoinQuery:
        """The canonical query consistent with the labels given so far.

        Well-defined at any point of the session (before convergence it is
        the most-specific consistent query); never raises.
        """
        return self.state.inferred_query()

    def last_propagation(self) -> PropagationResult:
        """The propagation of the most recent label.

        Raises :class:`~repro.exceptions.StrategyError` when no label has
        been applied in this sitting.
        """
        if not self.trace.propagations:
            raise StrategyError("no label has been applied yet")
        return self.trace.propagations[-1]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"InferenceSession(mode={self.mode.value!r}, "
            f"labels={self.num_interactions}, converged={self.is_converged()})"
        )
