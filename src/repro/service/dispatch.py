"""Crowd-batch dispatch: many simulated workers answering one session's batches.

The paper motivates join inference for *crowdsourcing*: the membership
questions are cheap enough for untrained workers, and minimising their number
minimises the bill.  This module reproduces that serving scenario end-to-end
on top of the asyncio service:

* :class:`WorkerProfile` / :class:`SimulatedWorker` — one crowd worker with a
  latency model (mean ± jitter, served by ``asyncio.sleep``) and a noise
  model (the ground-truth answer flips with ``error_rate``), both driven by a
  seeded per-worker RNG so runs are reproducible;
* :func:`majority_vote` — the aggregation rule: each question is asked to an
  odd number of workers and the majority label wins, which is how real crowd
  platforms defend against noisy workers;
* :class:`CrowdDispatcher` — the loop: pull the session's next event, fan the
  proposed batch out across the worker pool (``votes_per_question`` workers
  per tuple, all questions in flight concurrently), aggregate the votes, and
  feed the winners back through
  :meth:`~repro.service.aio.AsyncSessionService.answer_many` — until the
  session converges.

Task-safety: a :class:`SimulatedWorker` answers one question at a time per
call but holds no shared mutable state besides its RNG and counters, which
are only touched from the event loop thread; one worker pool may therefore
serve many dispatchers (and many sessions) concurrently in the same loop.

Quickstart (guided by a known goal query, 5 workers, one of them sloppy)::

    workers = simulated_crowd(goal, num_workers=5, error_rate=0.1,
                              mean_latency=0.05, seed=7)
    dispatcher = CrowdDispatcher(service, workers, votes_per_question=3)
    report = await dispatcher.run(descriptor.session_id)
    assert report.converged
"""

from __future__ import annotations

import asyncio
import random
from collections.abc import Sequence
from dataclasses import dataclass

from ..core.examples import Label
from ..core.oracle import GoalQueryOracle, NoisyOracle, Oracle
from ..core.queries import JoinQuery
from ..exceptions import ReproError
from ..relational.candidate import CandidateTable
from .aio import AsyncSessionService
from .protocol import BatchQuestionsAsked, Converged, QuestionAsked


class DispatchError(ReproError):
    """The crowd dispatcher was configured or used inconsistently."""


@dataclass(frozen=True)
class WorkerProfile:
    """How one simulated crowd worker behaves.

    ``mean_latency`` / ``latency_jitter`` model the seconds a worker takes to
    answer (uniform in ``mean ± jitter``, clamped at 0); ``error_rate`` is
    the probability each answer flips away from the ground truth.
    """

    name: str
    mean_latency: float = 0.0
    latency_jitter: float = 0.0
    error_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_latency < 0 or self.latency_jitter < 0:
            raise DispatchError(
                f"worker {self.name!r}: latency parameters must be >= 0"
            )
        if not 0.0 <= self.error_rate <= 1.0:
            raise DispatchError(
                f"worker {self.name!r}: error_rate must be within [0, 1], "
                f"got {self.error_rate}"
            )


class SimulatedWorker:
    """One crowd worker: ground truth from an oracle, plus latency and noise.

    The worker is *async*: :meth:`answer` sleeps out its simulated latency
    (yielding the event loop, which is what makes concurrent sessions
    overlap) before producing the — possibly flipped — label.  ``seed`` fixes
    the worker's private RNG; two workers with different seeds err on
    different questions.
    """

    def __init__(
        self, profile: WorkerProfile, oracle: Oracle, seed: int | None = None
    ) -> None:
        self.profile = profile
        self.oracle = oracle
        self._rng = random.Random(seed)
        # The noise model is the library's NoisyOracle, not a re-implementation;
        # this worker only adds the latency model on top.
        self._answerer: Oracle = (
            NoisyOracle(oracle, profile.error_rate, seed=seed)
            if profile.error_rate
            else oracle
        )
        self.answers_given = 0

    @property
    def errors_made(self) -> int:
        """How many of this worker's answers flipped away from the truth."""
        return self._answerer.flips if isinstance(self._answerer, NoisyOracle) else 0

    async def answer(self, table: CandidateTable, tuple_id: int) -> Label:
        """This worker's answer to one membership question.

        Raises whatever the backing oracle raises (e.g.
        :class:`~repro.exceptions.OracleError` for a tuple it cannot label).
        """
        profile = self.profile
        if profile.mean_latency or profile.latency_jitter:
            jitter = self._rng.uniform(-profile.latency_jitter, profile.latency_jitter)
            delay = max(0.0, profile.mean_latency + jitter)
            if delay:
                await asyncio.sleep(delay)
        label = self._answerer.label(table, tuple_id)
        self.answers_given += 1
        return label

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SimulatedWorker({self.profile.name!r}, answers={self.answers_given}, "
            f"errors={self.errors_made})"
        )


def simulated_crowd(
    goal: JoinQuery,
    num_workers: int,
    error_rate: float = 0.0,
    mean_latency: float = 0.0,
    latency_jitter: float = 0.0,
    seed: int = 0,
) -> list[SimulatedWorker]:
    """A homogeneous worker pool answering according to ``goal``.

    All workers share one :class:`~repro.core.oracle.GoalQueryOracle` (the
    ground truth is deterministic, so sharing only saves the repeated query
    evaluation) but carry private, distinctly-seeded RNGs.  Raises
    :class:`DispatchError` for a non-positive ``num_workers`` and validates
    the profile parameters per :class:`WorkerProfile`.
    """
    if num_workers < 1:
        raise DispatchError(f"num_workers must be positive, got {num_workers!r}")
    oracle = GoalQueryOracle(goal)
    return [
        SimulatedWorker(
            WorkerProfile(
                name=f"worker-{index}",
                mean_latency=mean_latency,
                latency_jitter=latency_jitter,
                error_rate=error_rate,
            ),
            oracle,
            seed=seed * 7919 + index,
        )
        for index in range(num_workers)
    ]


def majority_vote(votes: Sequence[Label]) -> Label:
    """The majority label of a non-empty, odd-sized vote set.

    Raises :class:`DispatchError` on an empty or tied vote — callers should
    ask an odd number of workers, which :class:`CrowdDispatcher` enforces.
    """
    if not votes:
        raise DispatchError("cannot aggregate an empty vote set")
    positives = sum(1 for vote in votes if vote is Label.POSITIVE)
    negatives = len(votes) - positives
    if positives == negatives:
        raise DispatchError(f"tied vote ({positives} vs {negatives}); use an odd vote count")
    return Label.POSITIVE if positives > negatives else Label.NEGATIVE


@dataclass(frozen=True)
class CrowdRunReport:
    """What one dispatched session cost and produced.

    ``questions`` counts distinct tuples asked about, ``votes`` the worker
    answers collected (``questions × votes_per_question``), ``contested`` the
    questions whose votes were not unanimous (i.e. where majority vote
    actually earned its keep).  ``query`` / ``atoms`` are the inferred
    query's rendering and canonical attribute pairs when the session
    converged.
    """

    session_id: str
    converged: bool
    rounds: int
    questions: int
    votes: int
    contested: int
    query: str | None
    atoms: tuple[tuple[str, str], ...] | None = None

    def as_dict(self) -> dict[str, object]:
        """Plain-dictionary form for JSON responses and reports."""
        return {
            "session_id": self.session_id,
            "converged": self.converged,
            "rounds": self.rounds,
            "questions": self.questions,
            "votes": self.votes,
            "contested": self.contested,
            "query": self.query,
            "atoms": None if self.atoms is None else [list(pair) for pair in self.atoms],
        }


class CrowdDispatcher:
    """Drives one session per :meth:`run` call through a pool of workers.

    Parameters
    ----------
    service:
        The :class:`~repro.service.aio.AsyncSessionService` owning the
        sessions.
    workers:
        The pool.  Question *j* of a batch goes to ``votes_per_question``
        consecutive workers (round-robin), so load spreads evenly.
    votes_per_question:
        How many workers answer each question; must be odd (majority vote)
        and at most the pool size.
    max_rounds:
        Safety valve: give up (``converged=False`` in the report) after this
        many batch rounds.  ``None`` means run until convergence.

    Raises :class:`DispatchError` at construction for an empty pool, an even
    or oversized vote count, or a non-positive ``max_rounds``.

    One dispatcher may serve many sessions concurrently (``run`` holds no
    dispatcher-wide state), and works with every session mode: guided
    sessions are treated as batches of one.
    """

    def __init__(
        self,
        service: AsyncSessionService,
        workers: Sequence[SimulatedWorker],
        votes_per_question: int = 3,
        max_rounds: int | None = None,
    ) -> None:
        if not workers:
            raise DispatchError("the worker pool must not be empty")
        if votes_per_question < 1 or votes_per_question % 2 == 0:
            raise DispatchError(
                f"votes_per_question must be a positive odd number, got {votes_per_question!r}"
            )
        if votes_per_question > len(workers):
            raise DispatchError(
                f"votes_per_question={votes_per_question} exceeds the pool size "
                f"({len(workers)} workers)"
            )
        if max_rounds is not None and max_rounds < 1:
            raise DispatchError(f"max_rounds must be positive, got {max_rounds!r}")
        self.service = service
        self.workers = list(workers)
        self.votes_per_question = votes_per_question
        self.max_rounds = max_rounds

    async def _collect_votes(
        self, table: CandidateTable, tuple_ids: Sequence[int], offset: int
    ) -> tuple[list[tuple[int, Label]], int]:
        """Fan the batch out to the pool and majority-aggregate the answers.

        All ``len(tuple_ids) × votes_per_question`` worker answers are in
        flight concurrently; their simulated latencies overlap.  Returns the
        aggregated ``(tuple_id, label)`` pairs plus how many questions drew a
        non-unanimous vote.
        """
        pool = self.workers
        assignments: list[tuple[int, SimulatedWorker]] = []
        for index, tuple_id in enumerate(tuple_ids):
            start = offset + index * self.votes_per_question
            for vote in range(self.votes_per_question):
                worker = pool[(start + vote) % len(pool)]
                assignments.append((tuple_id, worker))
        answers = await asyncio.gather(
            *(worker.answer(table, tuple_id) for tuple_id, worker in assignments)
        )
        votes_by_tuple: dict[int, list[Label]] = {}
        for (tuple_id, _worker), label in zip(assignments, answers, strict=True):
            votes_by_tuple.setdefault(tuple_id, []).append(label)
        split = sum(1 for votes in votes_by_tuple.values() if len(set(votes)) > 1)
        aggregated = [
            (tuple_id, majority_vote(votes_by_tuple[tuple_id]))
            for tuple_id in tuple_ids
        ]
        return aggregated, split

    async def run(self, session_id: str) -> CrowdRunReport:
        """Dispatch the session's batches to the crowd until convergence.

        Raises :class:`~repro.service.service.SessionServiceError` for an
        unknown session and :class:`DispatchError` if a round proposes no
        questions (a stalled session).  The session is left open — closing
        it (and reading its event stream) stays with the caller.
        """
        descriptor = await self.service.describe(session_id)
        table = await self.service.table(descriptor.table_fingerprint)
        rounds = questions = votes = contested = 0
        offset = 0
        while True:
            event = await self.service.next_question(session_id)
            if isinstance(event, Converged):
                return CrowdRunReport(
                    session_id=session_id,
                    converged=True,
                    rounds=rounds,
                    questions=questions,
                    votes=votes,
                    contested=contested,
                    query=event.query,
                    atoms=event.atoms,
                )
            if isinstance(event, QuestionAsked):
                tuple_ids: tuple[int, ...] = (event.tuple_id,)
            elif isinstance(event, BatchQuestionsAsked):
                tuple_ids = event.tuple_ids
            else:  # pragma: no cover - the protocol has no other question kind
                raise DispatchError(f"unexpected session event {event!r}")
            if not tuple_ids:
                raise DispatchError(
                    f"session {session_id!r} proposed an empty batch before converging"
                )
            aggregated, split = await self._collect_votes(table, tuple_ids, offset)
            offset = (offset + len(tuple_ids) * self.votes_per_question) % len(self.workers)
            await self.service.answer_many(session_id, aggregated)
            rounds += 1
            questions += len(tuple_ids)
            votes += len(tuple_ids) * self.votes_per_question
            contested += split
            if self.max_rounds is not None and rounds >= self.max_rounds:
                final = await self.service.describe(session_id)
                query = atoms = None
                if final.converged:
                    converged = await self.service.next_question(session_id)
                    assert isinstance(converged, Converged)
                    query, atoms = converged.query, converged.atoms
                return CrowdRunReport(
                    session_id=session_id,
                    converged=final.converged,
                    rounds=rounds,
                    questions=questions,
                    votes=votes,
                    contested=contested,
                    query=query,
                    atoms=atoms,
                )
