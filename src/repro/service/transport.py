"""Length-prefixed JSON framing over sockets: the cluster's wire transport.

The multi-process cluster (:mod:`repro.service.cluster`) drives its workers
over this module instead of :mod:`multiprocessing` pipes, so a worker can
live in the parent process (a thread over a socketpair), on the same machine
(a spawned process that dials back in), or on another machine entirely
(``python -m repro.service.worker --connect HOST:PORT``).  Everything that
crosses a connection is one *frame*:

* a 4-byte big-endian unsigned length header, then
* exactly that many bytes of UTF-8 JSON.

Framing keeps message boundaries explicit on a byte stream — a reader never
has to guess where one JSON document ends — and the length header lets both
sides reject oversized frames *before* buffering them
(:class:`FrameTooLargeError`), which bounds memory per connection.

The surface is deliberately tiny and blocking:

* :class:`FramedConnection` — ``send(obj)`` / ``recv() -> obj`` over any
  connected socket, with partial reads and writes handled internally;
* :class:`Listener` — accept loop for the supervisor side;
* :func:`connect` — reconnect-aware client dial (bounded retries with a
  fixed delay), for workers reaching back to a supervisor.

All failures surface as :class:`TransportError` subtypes, never raw
``OSError``/``EOFError`` — this module is the **only** place in the library
that touches sockets (machine-checked by analyzer rule RPR008), so callers
can treat "the transport broke" as one typed condition and run recovery.

Thread-safety: a :class:`FramedConnection` may be shared by threads only if
the caller serialises whole ``send``/``recv`` exchanges (the cluster holds a
per-worker lock around each round trip); interleaved partial frames from two
writers would corrupt the stream.
"""

from __future__ import annotations

import json
import socket
import struct

from ..exceptions import ReproError

#: Frames above this many body bytes are refused on both send and receive.
#: Generous (a table broadcast carries whole row sets) but finite, so a
#: corrupt or hostile length header cannot make a peer buffer gigabytes.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

#: The 4-byte big-endian unsigned length header.
_HEADER = struct.Struct(">I")


class TransportError(ReproError):
    """A cluster transport failure: the connection broke, timed out, or
    carried a frame the framing rules reject."""


class ConnectionClosedError(TransportError):
    """The peer closed the connection (cleanly at a frame boundary, or not)."""


class FrameTooLargeError(TransportError):
    """A frame exceeded the connection's ``max_frame_bytes`` limit.

    Raised on *send* before any byte leaves the process, and on *receive*
    from the length header alone, before the body is buffered.  After an
    oversized incoming header the stream position is unrecoverable, so the
    connection is closed.
    """


class FramedConnection:
    """One blocking, framed JSON channel over a connected socket.

    Owns the socket: :meth:`close` (or garbage collection) closes it.
    ``send`` and ``recv`` move whole frames — partial reads/writes, message
    boundaries, and UTF-8/JSON codec errors are handled here so callers see
    Python objects or a :class:`TransportError`, nothing in between.
    """

    __slots__ = ("_sock", "_max_frame_bytes")

    def __init__(self, sock: socket.socket, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        if max_frame_bytes < 1:
            raise ValueError(f"max_frame_bytes must be positive, got {max_frame_bytes!r}")
        self._sock = sock
        self._max_frame_bytes = max_frame_bytes

    @property
    def max_frame_bytes(self) -> int:
        """The per-frame body size limit, in bytes."""
        return self._max_frame_bytes

    def send(self, payload: object) -> None:
        """Encode ``payload`` as one JSON frame and write it completely.

        Raises :class:`FrameTooLargeError` before any byte is written when
        the encoded body exceeds the limit, :class:`TransportError` when the
        payload is not JSON-representable, and
        :class:`ConnectionClosedError` when the peer is gone mid-write.
        """
        try:
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise TransportError(f"payload is not JSON-representable: {exc}") from exc
        if len(body) > self._max_frame_bytes:
            raise FrameTooLargeError(
                f"outgoing frame of {len(body)} bytes exceeds the "
                f"{self._max_frame_bytes}-byte limit"
            )
        try:
            self._sock.sendall(_HEADER.pack(len(body)) + body)
        except OSError as exc:
            raise ConnectionClosedError(
                f"connection closed while sending a frame ({type(exc).__name__}: {exc})"
            ) from exc

    def recv(self) -> object:
        """Read exactly one frame and decode it.

        Blocks until a whole frame arrives (reassembling partial reads).
        Raises :class:`ConnectionClosedError` on EOF — at a frame boundary
        or mid-frame — and :class:`FrameTooLargeError` when the length
        header announces a body over the limit (the connection is closed:
        the stream position past an unread oversized body is unknowable).
        """
        header = self._recv_exact(_HEADER.size, context="frame header")
        (length,) = _HEADER.unpack(header)
        if length > self._max_frame_bytes:
            self.close()
            raise FrameTooLargeError(
                f"incoming frame announces {length} bytes, over the "
                f"{self._max_frame_bytes}-byte limit; connection dropped"
            )
        body = self._recv_exact(length, context="frame body")
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TransportError(f"frame body is not valid JSON: {exc}") from exc

    def _recv_exact(self, count: int, context: str) -> bytes:
        """Exactly ``count`` bytes from the socket, however many reads it takes."""
        chunks: list[bytes] = []
        remaining = count
        while remaining:
            try:
                chunk = self._sock.recv(min(remaining, 1 << 20))
            except TimeoutError as exc:
                raise TransportError(f"timed out reading a {context}") from exc
            except OSError as exc:
                raise ConnectionClosedError(
                    f"connection closed reading a {context} ({type(exc).__name__}: {exc})"
                ) from exc
            if not chunk:
                got = count - remaining
                detail = f"after {got} of {count} bytes" if got else "at a frame boundary"
                raise ConnectionClosedError(f"connection closed reading a {context} {detail}")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def settimeout(self, timeout: float | None) -> None:
        """Bound every subsequent socket operation (``None`` blocks forever)."""
        try:
            self._sock.settimeout(timeout)
        except OSError as exc:
            raise ConnectionClosedError(
                f"connection closed while setting a timeout ({type(exc).__name__})"
            ) from exc

    def fileno(self) -> int:
        """The underlying socket's file descriptor (for selectors/diagnostics)."""
        return self._sock.fileno()

    def close(self) -> None:
        """Close the underlying socket.  Idempotent; never raises."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close failures are unreportable
            pass

    def __enter__(self) -> FramedConnection:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class Listener:
    """A TCP accept point for framed connections (the supervisor side).

    Binds at construction — ``Listener()`` picks a free loopback port, so
    tests and local clusters never race over port numbers; pass an explicit
    ``("0.0.0.0", port)`` to accept workers from other machines.
    """

    __slots__ = ("_sock", "_max_frame_bytes")

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        backlog: int = 64,
    ) -> None:
        self._max_frame_bytes = max_frame_bytes
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, port))
            sock.listen(backlog)
        except OSError as exc:
            sock.close()
            raise TransportError(
                f"cannot listen on {host}:{port} ({type(exc).__name__}: {exc})"
            ) from exc
        self._sock = sock

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — with the OS-assigned port resolved."""
        return self._sock.getsockname()[:2]

    def accept(self, timeout: float | None = None) -> FramedConnection:
        """Accept one inbound connection as a :class:`FramedConnection`.

        Raises :class:`TransportError` on timeout and
        :class:`ConnectionClosedError` when the listener itself is closed.
        """
        self._sock.settimeout(timeout)
        try:
            sock, _ = self._sock.accept()
        except TimeoutError as exc:
            raise TransportError(
                f"no connection arrived within {timeout:.1f}s on {self.address_text()}"
            ) from exc
        except OSError as exc:
            raise ConnectionClosedError(
                f"listener closed while accepting ({type(exc).__name__}: {exc})"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return FramedConnection(sock, self._max_frame_bytes)

    def address_text(self) -> str:
        """``host:port`` for log and error messages."""
        try:
            host, port = self.address
        except OSError:
            return "<closed listener>"
        return f"{host}:{port}"

    def close(self) -> None:
        """Stop accepting.  Idempotent; never raises."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close failures are unreportable
            pass

    def __enter__(self) -> Listener:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def framed_pair(
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> tuple[FramedConnection, FramedConnection]:
    """A connected pair of framed connections (for in-process thread workers).

    Same framing, no TCP stack: the cluster's ``backend="thread"`` runs its
    worker loops over one end of a socketpair, which keeps single-process
    deployments (and fault-injection tests) cheap while exercising the
    identical wire path.
    """
    parent_sock, worker_sock = socket.socketpair()
    return (
        FramedConnection(parent_sock, max_frame_bytes),
        FramedConnection(worker_sock, max_frame_bytes),
    )


def connect(
    address: tuple[str, int],
    timeout: float = 10.0,
    retries: int = 0,
    retry_delay: float = 0.2,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> FramedConnection:
    """Dial a :class:`Listener` and return the framed connection.

    ``retries`` extra attempts are made after a refused/failed dial, sleeping
    ``retry_delay`` between them — the reconnect-aware client path a worker
    uses to reach a supervisor that is still binding (or briefly gone).
    Raises :class:`TransportError` when every attempt fails.
    """
    import time as _time

    host, port = address
    last_error: OSError | None = None
    for attempt in range(retries + 1):
        if attempt:
            _time.sleep(retry_delay)
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect((host, port))
        except OSError as exc:
            sock.close()
            last_error = exc
            continue
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return FramedConnection(sock, max_frame_bytes)
    raise TransportError(
        f"cannot connect to {host}:{port} after {retries + 1} attempt(s) "
        f"({type(last_error).__name__}: {last_error})"
    ) from last_error
