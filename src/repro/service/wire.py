"""The cluster's JSON wire vocabulary, shared by supervisor and worker.

Both ends of a cluster connection — :class:`ClusterSessionService` in the
parent and the worker loop in :mod:`repro.service.worker` — need the same
command/reply forms, the same table codec, and the same error taxonomy.
They live here so neither side imports the other: commands in
(``{"cmd": …}``), ``{"status": "ok"/"error", …}`` replies out, protocol
events in their existing wire form
(:func:`~repro.service.protocol.event_to_wire`), descriptors as their
``as_dict`` form, persistence documents as-is.

:func:`execute_command` is the worker-side dispatcher: one wire command
applied to a plain :class:`~repro.service.service.SessionService`.  It is
transport-agnostic — the socket loop in :mod:`repro.service.worker` calls
it, and tests can call it directly against an in-memory service.
"""

from __future__ import annotations

import datetime
import os

from ..exceptions import (
    InconsistentLabelError,
    OracleError,
    ReproError,
    StrategyError,
)
from ..relational.candidate import CandidateAttribute, CandidateTable
from ..relational.types import DataType
from ..sessions.persistence import SessionPersistenceError
from .protocol import ProtocolError, event_from_wire, event_to_wire
from .service import SessionService, SessionServiceError


class ClusterServiceError(SessionServiceError):
    """A cluster-level failure: a dead worker, a closed cluster, or a value
    that cannot cross the process boundary.

    Subclasses :class:`~repro.service.service.SessionServiceError` so every
    existing consumer of the service facade (the asyncio layer, the HTTP
    example) treats transport failures like any other service error instead
    of crashing on an unknown exception type.
    """


class WorkerUnavailableError(ClusterServiceError):
    """A worker died and the supervisor could not (or may not) bring it back.

    Raised *after* recovery was attempted and failed — or skipped because
    ``respawn=False`` — never for a blip the supervision layer absorbed.
    Carries :attr:`worker_index` so operators know which shard is down; the
    message names the worker too.  Subclasses :class:`ClusterServiceError`
    (and hence ``SessionServiceError``): when a worker is truly gone, its
    sessions are gone, and reaping their streams/slots — as the asyncio
    facade does for service errors — is the correct reaction.
    """

    def __init__(self, message: str, worker_index: int | None = None) -> None:
        super().__init__(message)
        self.worker_index = worker_index


class ClusterWorkerError(ReproError):
    """A worker raised an exception type the wire protocol does not carry.

    Deliberately *not* a :class:`SessionServiceError`: an unexpected
    worker-side bug (say, an ``AttributeError``) does not mean the session
    is gone, so the asyncio facade must not reap its streams or
    backpressure slot over it.
    """


# --------------------------------------------------------------------------- #
# The JSON wire forms: cells, tables, errors
# --------------------------------------------------------------------------- #
_JSON_SCALARS = (str, int, float, bool, type(None))


def _cell_to_wire(value: object) -> object:
    """One table cell as JSON (dates tagged, scalars as-is)."""
    if isinstance(value, datetime.datetime):  # before date: datetime is a date
        return {"$datetime": value.isoformat()}
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    if isinstance(value, _JSON_SCALARS):
        return value
    raise ClusterServiceError(
        f"table cell {value!r} of type {type(value).__name__} cannot cross the "
        "process boundary; cluster tables need JSON-representable cells"
    )


def _cell_from_wire(value: object) -> object:
    if isinstance(value, dict):
        if "$datetime" in value:
            return datetime.datetime.fromisoformat(value["$datetime"])
        if "$date" in value:
            return datetime.date.fromisoformat(value["$date"])
    return value


def table_to_wire(table: CandidateTable) -> dict[str, object]:
    """A candidate table as a JSON object (schema, provenance, and rows).

    The form preserves everything the inference core reads — attribute
    names, data types, source relations, row values — so the rebuilt table
    has the identical atom universe and the identical content fingerprint.
    Raises :class:`ClusterServiceError` for cell values JSON cannot carry.
    """
    return {
        "name": table.name,
        "attributes": [
            {
                "name": attribute.name,
                "data_type": attribute.data_type.value,
                "source_relation": attribute.source_relation,
            }
            for attribute in table.attributes
        ],
        "rows": [[_cell_to_wire(value) for value in row] for row in table],
    }


def table_from_wire(payload: dict[str, object]) -> CandidateTable:
    """Rebuild a candidate table from its :func:`table_to_wire` form."""
    attributes = [
        CandidateAttribute(
            name=spec["name"],
            data_type=DataType(spec["data_type"]),
            source_relation=spec.get("source_relation"),
        )
        for spec in payload["attributes"]
    ]
    rows = [[_cell_from_wire(value) for value in row] for row in payload["rows"]]
    return CandidateTable(attributes, rows, name=payload["name"])


#: Exception types a worker may raise that the parent re-raises as-is.
_ERROR_KINDS: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        SessionServiceError,
        ClusterServiceError,
        StrategyError,
        InconsistentLabelError,
        OracleError,
        ProtocolError,
        ReproError,
        SessionPersistenceError,
        ValueError,
        TypeError,
        KeyError,
        IndexError,
    )
}


def rebuild_error(reply: dict[str, object]) -> BaseException:
    """The parent-side exception for a worker's ``{"status": "error"}`` reply."""
    kind = reply.get("kind")
    message = str(reply.get("message", ""))
    cls = _ERROR_KINDS.get(kind) if isinstance(kind, str) else None
    if cls is None:
        # Not a ClusterServiceError: an unexpected worker exception does not
        # mean the session is gone, so it must not read as a service error.
        error: BaseException = ClusterWorkerError(f"worker raised {kind}: {message}")
    elif cls is KeyError and message.startswith("'") and message.endswith("'"):
        error = KeyError(message[1:-1])
    else:
        error = cls(message)
    applied = reply.get("applied_events")
    if applied:
        # submit_many attaches the already-applied events to the exception so
        # stream relays stay gap-free; carry them across the boundary too.
        error.applied_events = tuple(event_from_wire(wire) for wire in applied)
    return error


def error_reply(exc: BaseException) -> dict[str, object]:
    """The worker-side ``{"status": "error"}`` form for an exception."""
    reply: dict[str, object] = {
        "status": "error",
        "kind": type(exc).__name__,
        "message": str(exc),
    }
    applied = getattr(exc, "applied_events", None)
    if applied:
        reply["applied_events"] = [event_to_wire(event) for event in applied]
    return reply


# --------------------------------------------------------------------------- #
# The worker-side command dispatcher
# --------------------------------------------------------------------------- #
def execute_command(service: SessionService, request: dict[str, object]) -> object:
    """Apply one wire command to the worker's service; the JSON-able result."""
    command = request["cmd"]
    if command == "ping":
        return {"pid": os.getpid()}
    if command == "register_table":
        return service.register_table(table_from_wire(request["table"]))
    if command == "create":
        # A table the worker has not seen yet arrives inline; the service's
        # atomic create registers it together with the session, or not at all.
        table: CandidateTable | str = (
            table_from_wire(request["table"])
            if "table" in request
            else request["fingerprint"]
        )
        return service.create(
            table,
            mode=request["mode"],
            strategy=request.get("strategy"),
            k=request.get("k"),
            strict=request.get("strict", True),
            session_id=request["session_id"],
        ).as_dict()
    if command == "resume":
        table = (
            table_from_wire(request["table"])
            if "table" in request
            else request["fingerprint"]
        )
        return service.resume(
            request["document"],
            table=table,
            session_id=request["session_id"],
        ).as_dict()
    if command == "describe":
        return service.describe(request["session_id"]).as_dict()
    if command == "close":
        return service.close(request["session_id"]).as_dict()
    if command == "next_question":
        return event_to_wire(service.next_question(request["session_id"]))
    if command == "answer":
        return event_to_wire(
            service.answer(
                request["session_id"], request["label"], tuple_id=request.get("tuple_id")
            )
        )
    if command == "answer_many":
        applied = service.answer_many(
            request["session_id"],
            [(int(tuple_id), label) for tuple_id, label in request["answers"]],
        )
        return [event_to_wire(event) for event in applied]
    if command == "save":
        return service.save(request["session_id"])
    if command == "session_ids":
        return service.session_ids()
    raise ClusterServiceError(f"unknown cluster command {command!r}")
