"""Multi-process sharded serving: :class:`ClusterSessionService`.

One Python process can only run one inference step at a time — the strategy
scoring that dominates a guided session is pure CPU work, and the GIL caps
the :class:`~repro.service.aio.AsyncSessionService` executor at one core no
matter how many threads it carries.  This module scales the serving layer
*out* instead of up, in the spirit of hybrid scale-out designs: N worker
processes, each running its own single-process
:class:`~repro.service.service.SessionService`, behind one facade that
speaks the exact same API.

Design
------
* **Consistent routing.**  The facade generates every ``session_id`` itself
  (a uuid4 hex string) and routes *every* command for a session to the
  worker ``int(session_id, 16) % num_workers``.  No routing table, no
  rebalancing: the id alone names the shard, for this facade or any other
  facade pointed at the same cluster layout.
* **JSON wire commands.**  Workers are driven over
  :mod:`multiprocessing` pipes carrying single-line JSON text — commands in,
  ``{"status": "ok"/"error", …}`` replies out.  Protocol events cross the
  boundary in their existing wire form (:func:`~repro.service.protocol.event_to_wire`),
  descriptors as their ``as_dict`` form, persistence documents as-is.
  Nothing unpicklable (and nothing pickled, beyond the str framing) crosses
  the process boundary; worker-side exceptions are re-raised in the parent
  with their original type and message.
* **Tables broadcast once.**  A candidate table is registered by content
  fingerprint and broadcast to every worker exactly once (rows, attribute
  types and relation provenance travel in a JSON table form), because any
  worker may be asked to host a session over it.  A table first seen by a
  `create`/`resume` travels inline to the routed worker and is broadcast to
  the rest only after success, so a failed command registers nothing
  anywhere.  Cell values must be JSON-representable (str/int/float/bool/
  None, plus dates, which the codec tags).
* **Same facade.**  :class:`ClusterSessionService` duck-types
  :class:`~repro.service.service.SessionService` — create / describe /
  next_question / answer / answer_many / save / resume / close, thread-safe,
  same exception types — so every consumer of the single-process service
  works unchanged: wrap it in an
  :class:`~repro.service.aio.AsyncSessionService` to get per-session event
  streams, backpressure, and the crowd dispatcher on top of real
  multi-core parallelism (size ``max_workers`` at least to the cluster's
  worker count, one blocking pipe per in-flight command).

Quickstart::

    with ClusterSessionService(num_workers=4) as cluster:
        fingerprint = cluster.register_table(table)   # broadcast to workers
        sid = cluster.create(fingerprint, strategy="lookahead-entropy").session_id
        event = cluster.next_question(sid)            # runs in a worker process
        ...

``benchmarks/bench_cluster_service.py`` gates this layer: per-session wire
traces identical to the single-process service, and a wall-clock speedup for
concurrent CPU-bound sessions over the single-process async service on
multi-core machines.
"""

from __future__ import annotations

import datetime
import json
import multiprocessing
import os
import threading
import uuid

from ..core.strategies.base import Strategy
from ..core.strategies.registry import create_strategy
from ..exceptions import (
    InconsistentLabelError,
    OracleError,
    ReproError,
    StrategyError,
)
from ..relational.candidate import CandidateAttribute, CandidateTable
from ..relational.types import DataType
from ..sessions.persistence import SessionPersistenceError, table_fingerprint
from .protocol import (
    Event,
    InteractionMode,
    LabelApplied,
    ProtocolError,
    event_from_wire,
    event_to_wire,
)
from .service import SessionDescriptor, SessionService, SessionServiceError
from .stepper import AnswerSet, LabelLike, validate_mode_options

#: Default worker count: one per core, capped so a big machine does not fork
#: dozens of interpreters for a demo.
DEFAULT_WORKERS = max(1, min(8, os.cpu_count() or 1))


class ClusterServiceError(SessionServiceError):
    """A cluster-level failure: a dead worker, a closed cluster, or a value
    that cannot cross the process boundary.

    Subclasses :class:`~repro.service.service.SessionServiceError` so every
    existing consumer of the service facade (the asyncio layer, the HTTP
    example) treats transport failures like any other service error instead
    of crashing on an unknown exception type.  In particular, a dead
    worker's sessions *are* gone — reaping their streams/slots, as the
    asyncio facade does for service errors, is the correct reaction.
    """


class ClusterWorkerError(ReproError):
    """A worker raised an exception type the wire protocol does not carry.

    Deliberately *not* a :class:`SessionServiceError`: an unexpected
    worker-side bug (say, an ``AttributeError``) does not mean the session
    is gone, so the asyncio facade must not reap its streams or
    backpressure slot over it.
    """


# --------------------------------------------------------------------------- #
# The JSON wire forms: cells, tables, errors
# --------------------------------------------------------------------------- #
_JSON_SCALARS = (str, int, float, bool, type(None))


def _cell_to_wire(value: object) -> object:
    """One table cell as JSON (dates tagged, scalars as-is)."""
    if isinstance(value, datetime.datetime):  # before date: datetime is a date
        return {"$datetime": value.isoformat()}
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    if isinstance(value, _JSON_SCALARS):
        return value
    raise ClusterServiceError(
        f"table cell {value!r} of type {type(value).__name__} cannot cross the "
        "process boundary; cluster tables need JSON-representable cells"
    )


def _cell_from_wire(value: object) -> object:
    if isinstance(value, dict):
        if "$datetime" in value:
            return datetime.datetime.fromisoformat(value["$datetime"])
        if "$date" in value:
            return datetime.date.fromisoformat(value["$date"])
    return value


def table_to_wire(table: CandidateTable) -> dict[str, object]:
    """A candidate table as a JSON object (schema, provenance, and rows).

    The form preserves everything the inference core reads — attribute
    names, data types, source relations, row values — so the rebuilt table
    has the identical atom universe and the identical content fingerprint.
    Raises :class:`ClusterServiceError` for cell values JSON cannot carry.
    """
    return {
        "name": table.name,
        "attributes": [
            {
                "name": attribute.name,
                "data_type": attribute.data_type.value,
                "source_relation": attribute.source_relation,
            }
            for attribute in table.attributes
        ],
        "rows": [[_cell_to_wire(value) for value in row] for row in table],
    }


def table_from_wire(payload: dict[str, object]) -> CandidateTable:
    """Rebuild a candidate table from its :func:`table_to_wire` form."""
    attributes = [
        CandidateAttribute(
            name=spec["name"],
            data_type=DataType(spec["data_type"]),
            source_relation=spec.get("source_relation"),
        )
        for spec in payload["attributes"]
    ]
    rows = [[_cell_from_wire(value) for value in row] for row in payload["rows"]]
    return CandidateTable(attributes, rows, name=payload["name"])


#: Exception types a worker may raise that the parent re-raises as-is.
_ERROR_KINDS: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        SessionServiceError,
        ClusterServiceError,
        StrategyError,
        InconsistentLabelError,
        OracleError,
        ProtocolError,
        ReproError,
        SessionPersistenceError,
        ValueError,
        TypeError,
        KeyError,
        IndexError,
    )
}


def _rebuild_error(reply: dict[str, object]) -> BaseException:
    """The parent-side exception for a worker's ``{"status": "error"}`` reply."""
    kind = reply.get("kind")
    message = str(reply.get("message", ""))
    cls = _ERROR_KINDS.get(kind) if isinstance(kind, str) else None
    if cls is None:
        # Not a ClusterServiceError: an unexpected worker exception does not
        # mean the session is gone, so it must not read as a service error.
        error: BaseException = ClusterWorkerError(f"worker raised {kind}: {message}")
    elif cls is KeyError and message.startswith("'") and message.endswith("'"):
        error = KeyError(message[1:-1])
    else:
        error = cls(message)
    applied = reply.get("applied_events")
    if applied:
        # submit_many attaches the already-applied events to the exception so
        # stream relays stay gap-free; carry them across the boundary too.
        error.applied_events = tuple(event_from_wire(wire) for wire in applied)
    return error


# --------------------------------------------------------------------------- #
# The worker process
# --------------------------------------------------------------------------- #
def _execute(service: SessionService, request: dict[str, object]) -> object:
    """Apply one wire command to the worker's service; the JSON-able result."""
    command = request["cmd"]
    if command == "ping":
        return {"pid": os.getpid()}
    if command == "register_table":
        return service.register_table(table_from_wire(request["table"]))
    if command == "create":
        # A table the worker has not seen yet arrives inline; the service's
        # atomic create registers it together with the session, or not at all.
        table: CandidateTable | str = (
            table_from_wire(request["table"])
            if "table" in request
            else request["fingerprint"]
        )
        return service.create(
            table,
            mode=request["mode"],
            strategy=request.get("strategy"),
            k=request.get("k"),
            strict=request.get("strict", True),
            session_id=request["session_id"],
        ).as_dict()
    if command == "resume":
        table = (
            table_from_wire(request["table"])
            if "table" in request
            else request["fingerprint"]
        )
        return service.resume(
            request["document"],
            table=table,
            session_id=request["session_id"],
        ).as_dict()
    if command == "describe":
        return service.describe(request["session_id"]).as_dict()
    if command == "close":
        return service.close(request["session_id"]).as_dict()
    if command == "next_question":
        return event_to_wire(service.next_question(request["session_id"]))
    if command == "answer":
        return event_to_wire(
            service.answer(
                request["session_id"], request["label"], tuple_id=request.get("tuple_id")
            )
        )
    if command == "answer_many":
        applied = service.answer_many(
            request["session_id"],
            [(int(tuple_id), label) for tuple_id, label in request["answers"]],
        )
        return [event_to_wire(event) for event in applied]
    if command == "save":
        return service.save(request["session_id"])
    if command == "session_ids":
        return service.session_ids()
    raise ClusterServiceError(f"unknown cluster command {command!r}")


def _worker_main(conn) -> None:
    """The worker loop: one `SessionService`, JSON commands in, replies out."""
    service = SessionService()
    while True:
        try:
            text = conn.recv()
        except (EOFError, OSError):
            break  # the parent went away; nothing left to serve
        request = json.loads(text)
        if request.get("cmd") == "shutdown":
            try:
                conn.send(json.dumps({"status": "ok", "result": None}))
            except (BrokenPipeError, OSError):
                pass
            break
        try:
            reply: dict[str, object] = {"status": "ok", "result": _execute(service, request)}
        except Exception as exc:
            reply = {"status": "error", "kind": type(exc).__name__, "message": str(exc)}
            applied = getattr(exc, "applied_events", None)
            if applied:
                reply["applied_events"] = [event_to_wire(event) for event in applied]
        try:
            conn.send(json.dumps(reply))
        except (BrokenPipeError, OSError):
            break
    conn.close()


class _WorkerHandle:
    """The parent's view of one worker: process, pipe, and a request lock.

    A worker executes one command at a time (its loop is serial), so the
    lock both serialises access to the pipe and models the worker's real
    capacity; commands for sessions on *different* workers run in parallel.
    """

    __slots__ = ("index", "process", "conn", "lock")

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()

    def request(self, payload: dict[str, object]) -> object:
        with self.lock:
            try:
                self.conn.send(json.dumps(payload))
                reply = json.loads(self.conn.recv())
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise ClusterServiceError(
                    f"cluster worker {self.index} is unreachable "
                    f"({type(exc).__name__}); its sessions are lost"
                ) from exc
        if reply.get("status") == "ok":
            return reply.get("result")
        raise _rebuild_error(reply)


# --------------------------------------------------------------------------- #
# The facade
# --------------------------------------------------------------------------- #
class ClusterSessionService:
    """Shards sessions across N worker processes behind the `SessionService` API.

    Parameters
    ----------
    num_workers:
        How many worker processes to spawn (default: one per core, capped at
        8).  Each runs its own :class:`~repro.service.service.SessionService`.
    mp_context:
        The :mod:`multiprocessing` start method (default ``"spawn"`` — safe
        in processes that also run threads or an asyncio loop; pass
        ``"fork"`` on POSIX for faster start-up when that does not apply).

    Thread-safety: every public method may be called from any thread, like
    the single-process service.  Commands against sessions on different
    workers run in parallel (that is the point); commands against the same
    worker serialise on its pipe.  Exceptions mirror the single-process
    service — :class:`SessionServiceError` (unknown ids), ``ValueError`` /
    :class:`~repro.exceptions.StrategyError` (bad options),
    :class:`~repro.exceptions.InconsistentLabelError` (contradictions on a
    strict session) — re-raised in the parent with the worker's message;
    transport-level failures raise :class:`ClusterServiceError`.

    Use as a context manager (or call :meth:`shutdown`) so the worker
    processes exit deterministically; they are daemonic, so an unclean exit
    cannot leak them past the parent.
    """

    def __init__(
        self,
        num_workers: int | None = None,
        mp_context: str = "spawn",
    ) -> None:
        count = DEFAULT_WORKERS if num_workers is None else num_workers
        if count < 1:
            raise ValueError(f"num_workers must be a positive integer, got {num_workers!r}")
        context = multiprocessing.get_context(mp_context)
        self._lock = threading.RLock()
        self._tables: dict[str, CandidateTable] = {}
        self._closed = False
        self._workers: list[_WorkerHandle] = []
        try:
            for index in range(count):
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(child_conn,),
                    name=f"repro-cluster-{index}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._workers.append(_WorkerHandle(index, process, parent_conn))
            # One round trip per worker up front: surfaces import/start-up
            # failures at construction instead of on the first command.
            for worker in self._workers:
                worker.request({"cmd": "ping"})
        except BaseException:
            self.shutdown()
            raise

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    @property
    def num_workers(self) -> int:
        """How many worker processes the cluster runs."""
        return len(self._workers)

    def _check_open(self) -> None:
        if self._closed:
            raise ClusterServiceError("the cluster session service is shut down")

    def _worker_for(self, session_id: str) -> _WorkerHandle:
        """The worker owning a session: ``int(session_id, 16) % num_workers``."""
        self._check_open()
        try:
            shard = int(session_id, 16)
        except (TypeError, ValueError):
            # Ids the cluster did not mint cannot name a shard; mirror the
            # single-process service's unknown-id error.
            raise SessionServiceError(f"unknown session id {session_id!r}") from None
        return self._workers[shard % len(self._workers)]

    def _broadcast(self, payload: dict[str, object]) -> list[object]:
        self._check_open()
        return [worker.request(payload) for worker in self._workers]

    @staticmethod
    def _label_to_wire(label: LabelLike) -> object:
        value = getattr(label, "value", label)
        if not isinstance(value, (str, bool)):
            raise ClusterServiceError(
                f"label {label!r} cannot cross the process boundary; "
                "pass a Label, its string value, or a boolean"
            )
        return value

    @staticmethod
    def _strategy_to_wire(strategy: Strategy | str | None) -> str | None:
        if strategy is None or isinstance(strategy, str):
            return strategy
        raise ClusterServiceError(
            "a cluster session takes its strategy by registry name "
            f"(got the instance {strategy!r}); strategy objects cannot cross "
            "the process boundary"
        )

    # ------------------------------------------------------------------ #
    # Table registry
    # ------------------------------------------------------------------ #
    def register_table(self, table: CandidateTable) -> str:
        """Register a table and broadcast it to every worker (idempotent).

        Returns the content fingerprint.  The rows travel to each worker
        exactly once per cluster; re-registering the same content is free.
        Raises :class:`ClusterServiceError` for cell values JSON cannot
        carry, or when a worker is unreachable.
        """
        fingerprint = table_fingerprint(table)
        with self._lock:
            self._check_open()
            if fingerprint in self._tables:
                return fingerprint
            wire = table_to_wire(table)
            echoed = self._broadcast({"cmd": "register_table", "table": wire})
            if any(echo != fingerprint for echo in echoed):
                raise ClusterServiceError(
                    f"table {table.name!r} changed fingerprint crossing the wire; "
                    "its cell values do not round-trip through JSON"
                )
            self._tables[fingerprint] = table
        return fingerprint

    def tables(self) -> dict[str, str]:
        """The registered tables: ``fingerprint -> table name``."""
        with self._lock:
            return {fp: table.name for fp, table in self._tables.items()}

    def table(self, fingerprint: str) -> CandidateTable:
        """The registered table with the given fingerprint.

        Served from the facade's own registry (every registered table is on
        every worker); raises :class:`SessionServiceError` for an unknown
        fingerprint.
        """
        with self._lock:
            try:
                return self._tables[fingerprint]
            except KeyError:
                raise SessionServiceError(
                    f"no table registered under fingerprint {fingerprint!r}"
                ) from None

    def _table_reference(
        self, table: CandidateTable | str
    ) -> tuple[str, dict | None, CandidateTable | None]:
        """How the routed worker gets the table: ``(fingerprint, inline wire, instance)``.

        A table instance the cluster has not seen yet travels *inline* with
        the create/resume command instead of being broadcast up front — the
        worker-side create is atomic, so a failed command registers the
        table nowhere; :meth:`_finish_registration` broadcasts it to the
        remaining workers only after success.  Known fingerprints (and
        already-registered instances) yield no inline form.
        """
        if isinstance(table, CandidateTable):
            fingerprint = table_fingerprint(table)
            with self._lock:
                if fingerprint in self._tables:
                    return fingerprint, None, None
            return fingerprint, table_to_wire(table), table
        self.table(table)  # raises SessionServiceError when unknown
        return table, None, None

    def _finish_registration(
        self,
        fingerprint: str,
        table: CandidateTable,
        wire: dict,
        owner: _WorkerHandle,
    ) -> None:
        """Record a table the routed worker just adopted; broadcast to the rest."""
        with self._lock:
            if self._closed or fingerprint in self._tables:
                return  # a concurrent command completed the broadcast
        for worker in self._workers:
            if worker is not owner:
                worker.request({"cmd": "register_table", "table": wire})
        with self._lock:
            self._tables.setdefault(fingerprint, table)

    @staticmethod
    def _mint_session_id(session_id: str | None) -> str:
        """A fresh hex id, or the caller's — which must name a shard."""
        if session_id is None:
            return uuid.uuid4().hex
        try:
            int(session_id, 16)
        except (TypeError, ValueError):
            raise ClusterServiceError(
                f"cluster session ids must be hexadecimal strings, got {session_id!r} "
                "(the worker shard is derived from the id)"
            ) from None
        return session_id

    # ------------------------------------------------------------------ #
    # Session lifecycle
    # ------------------------------------------------------------------ #
    def create(
        self,
        table: CandidateTable | str,
        mode: InteractionMode | str = InteractionMode.GUIDED,
        strategy: Strategy | str | None = None,
        k: int | None = None,
        strict: bool = True,
        session_id: str | None = None,
    ) -> SessionDescriptor:
        """Create a session on the worker its id hashes to.

        Arguments and validation are those of
        :meth:`~repro.service.service.SessionService.create`; the strategy
        must be a registry *name* (instances cannot cross the process
        boundary) and an explicit ``session_id`` must be hexadecimal (the
        shard is derived from it).  A new table instance travels inline to
        the routed worker and is broadcast to the rest only after success,
        so a failed create registers neither a session nor a table —
        anywhere in the cluster.
        """
        strategy_name = self._strategy_to_wire(strategy)
        validate_mode_options(mode, {"strategy": strategy_name, "k": k})
        if strategy_name is not None:
            create_strategy(strategy_name)  # unknown names fail before any send
        fingerprint, wire, instance = self._table_reference(table)
        session_id = self._mint_session_id(session_id)
        worker = self._worker_for(session_id)
        request = {
            "cmd": "create",
            "fingerprint": fingerprint,
            "mode": mode.value if isinstance(mode, InteractionMode) else mode,
            "strategy": strategy_name,
            "k": k,
            "strict": strict,
            "session_id": session_id,
        }
        if wire is not None:
            request["table"] = wire
        payload = worker.request(request)
        if wire is not None:
            self._finish_registration(fingerprint, instance, wire, worker)
        return SessionDescriptor.from_dict(payload)

    def resume(
        self,
        payload: dict[str, object],
        table: CandidateTable | str | None = None,
        session_id: str | None = None,
    ) -> SessionDescriptor:
        """Restore a saved session document on the worker its new id hashes to.

        Semantics of :meth:`~repro.service.service.SessionService.resume`,
        including the strictness pass-through (a lenient session resumes
        lenient on its worker) and the no-trace-on-failure guarantee: a new
        table instance travels inline to the routed worker and is broadcast
        to the rest only after the resume succeeds, so a malformed or
        corrupt document registers nothing anywhere.  The table is found
        like there — explicit instance, explicit fingerprint, or the
        document's fingerprint, which must already be registered with the
        cluster.
        """
        if table is None:
            fingerprint = payload.get("table_fingerprint")
            if not isinstance(fingerprint, str):
                raise SessionServiceError(
                    "the session document carries no table fingerprint; pass the table explicitly"
                )
            fingerprint, wire, instance = self._table_reference(fingerprint)
        else:
            fingerprint, wire, instance = self._table_reference(table)
        session_id = self._mint_session_id(session_id)
        worker = self._worker_for(session_id)
        request = {
            "cmd": "resume",
            "document": payload,
            "fingerprint": fingerprint,
            "session_id": session_id,
        }
        if wire is not None:
            request["table"] = wire
        reply = worker.request(request)
        if wire is not None:
            self._finish_registration(fingerprint, instance, wire, worker)
        return SessionDescriptor.from_dict(reply)

    def session_ids(self) -> list[str]:
        """Ids of all live sessions, across all workers."""
        return [sid for ids in self._broadcast({"cmd": "session_ids"}) for sid in ids]

    def __len__(self) -> int:
        return len(self.session_ids())

    def describe(self, session_id: str) -> SessionDescriptor:
        """A snapshot of the session's kind and progress (from its worker)."""
        reply = self._worker_for(session_id).request(
            {"cmd": "describe", "session_id": session_id}
        )
        return SessionDescriptor.from_dict(reply)

    def close(self, session_id: str) -> SessionDescriptor:
        """Remove a session from its worker and return its final snapshot."""
        reply = self._worker_for(session_id).request(
            {"cmd": "close", "session_id": session_id}
        )
        return SessionDescriptor.from_dict(reply)

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    def next_question(self, session_id: str) -> Event:
        """The session's next protocol event, computed in its worker process."""
        wire = self._worker_for(session_id).request(
            {"cmd": "next_question", "session_id": session_id}
        )
        return event_from_wire(wire)

    def answer(
        self, session_id: str, label: LabelLike, tuple_id: int | None = None
    ) -> LabelApplied:
        """Apply one label in the session's worker process.

        Exceptions as for :meth:`~repro.service.service.SessionService.answer`,
        re-raised in the parent with the worker's message.
        """
        wire = self._worker_for(session_id).request(
            {
                "cmd": "answer",
                "session_id": session_id,
                "label": self._label_to_wire(label),
                "tuple_id": tuple_id,
            }
        )
        return event_from_wire(wire)

    def answer_many(self, session_id: str, answers: AnswerSet) -> list[LabelApplied]:
        """Apply a batch of ``tuple_id -> label`` answers in the worker.

        On a mid-batch error the events of the already-applied answers cross
        the boundary on the re-raised exception (``applied_events``), exactly
        like the single-process service.
        """
        pairs = answers.items() if hasattr(answers, "items") else answers
        wire_pairs = [
            [int(tuple_id), self._label_to_wire(label)] for tuple_id, label in pairs
        ]
        replies = self._worker_for(session_id).request(
            {"cmd": "answer_many", "session_id": session_id, "answers": wire_pairs}
        )
        return [event_from_wire(wire) for wire in replies]

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, session_id: str) -> dict[str, object]:
        """The session as a v3 persistence document, taken in its worker."""
        return self._worker_for(session_id).request(
            {"cmd": "save", "session_id": session_id}
        )

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop every worker process.  Idempotent.

        Live sessions die with their workers (save what must survive first);
        commands after shutdown raise :class:`ClusterServiceError`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
        for worker in workers:
            with worker.lock:
                try:
                    worker.conn.send(json.dumps({"cmd": "shutdown"}))
                    worker.conn.recv()
                except (EOFError, BrokenPipeError, OSError):
                    pass
                worker.conn.close()
        for worker in workers:
            worker.process.join(timeout=timeout)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=timeout)

    def __enter__(self) -> ClusterSessionService:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        with self._lock:
            state = "closed" if self._closed else "open"
            tables = len(self._tables)
        return (
            f"ClusterSessionService(workers={len(self._workers)}, "
            f"tables={tables}, {state})"
        )
