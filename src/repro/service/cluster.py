"""Multi-process sharded serving with supervision: :class:`ClusterSessionService`.

One Python process can only run one inference step at a time — the strategy
scoring that dominates a guided session is pure CPU work, and the GIL caps
the :class:`~repro.service.aio.AsyncSessionService` executor at one core no
matter how many threads it carries.  This module scales the serving layer
*out* instead of up: N workers, each running its own single-process
:class:`~repro.service.service.SessionService`, behind one facade that
speaks the exact same API — and, since the transport moved from
:mod:`multiprocessing` pipes to framed sockets, survives losing any of them.

Design
------
* **Consistent routing.**  The facade generates every ``session_id`` itself
  (a uuid4 hex string) and routes *every* command for a session to the
  worker ``int(session_id, 16) % num_workers``.  No routing table, no
  rebalancing: the id alone names the shard, for this facade or any other
  facade pointed at the same cluster layout.
* **Framed JSON over sockets.**  Workers are driven over the
  length-prefixed JSON framing of :mod:`repro.service.transport` — commands
  in, ``{"status": "ok"/"error", …}`` replies out, wire forms shared with
  the worker loop via :mod:`repro.service.wire`.  Three backends speak the
  identical protocol: ``"process"`` (spawned local processes that dial back
  to the supervisor's listener — the default), ``"thread"`` (in-process
  worker loops over socketpairs: no spawn cost, no multi-core speedup;
  ideal for tests and fault injection), and ``"external"`` (the supervisor
  only listens; start workers anywhere with ``python -m repro.service.worker
  --connect HOST:PORT --token TOKEN``).
* **Supervision.**  Every state-changing command's reply piggybacks the
  touched session's durable v3 document (the service-level write-through
  hook), so the supervisor always holds a replayable copy of every session.
  A broken socket — or a failed heartbeat, checked every
  ``heartbeat_interval`` seconds on idle workers — triggers recovery: the
  worker is respawned, every registered table is re-broadcast to it, every
  lost session is re-resumed from its document under its original id, and
  the in-flight command is retried **exactly once**.  Replay is label-driven
  and the strategies are deterministic, so a session cannot tell it
  happened: the wire trace is byte-identical to an undisturbed run
  (``benchmarks/bench_cluster_service.py --chaos`` gates exactly that, with
  a real ``SIGKILL`` mid-benchmark).  With ``respawn=False`` worker death
  surfaces as a typed :class:`~repro.service.wire.WorkerUnavailableError`
  naming the worker instead of a raw transport error.
* **Tables broadcast once.**  A candidate table is registered by content
  fingerprint and broadcast to every worker (rows, attribute types and
  relation provenance travel in a JSON table form), because any worker may
  be asked to host a session over it.  A table first seen by a
  `create`/`resume` travels inline to the routed worker and is broadcast to
  the rest only after success, so a failed command registers nothing
  anywhere.  Cell values must be JSON-representable (str/int/float/bool/
  None, plus dates, which the codec tags).
* **Same facade.**  :class:`ClusterSessionService` duck-types
  :class:`~repro.service.service.SessionService` — create / describe /
  next_question / answer / answer_many / save / resume / close, thread-safe,
  same exception types — so every consumer of the single-process service
  works unchanged: wrap it in an
  :class:`~repro.service.aio.AsyncSessionService` to get per-session event
  streams, backpressure, and the crowd dispatcher on top of real
  multi-core parallelism.

Quickstart::

    with ClusterSessionService(num_workers=4) as cluster:
        fingerprint = cluster.register_table(table)   # broadcast to workers
        sid = cluster.create(fingerprint, strategy="lookahead-entropy").session_id
        event = cluster.next_question(sid)            # runs in a worker process
        ...

``benchmarks/bench_cluster_service.py`` gates this layer: per-session wire
traces identical to the single-process service, a wall-clock speedup for
concurrent CPU-bound sessions on multi-core machines, and (``--chaos``)
trace-identical completion of every session across a mid-run worker kill.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import uuid
from collections.abc import Callable

from ..core.strategies.base import Strategy
from ..core.strategies.registry import create_strategy
from ..exceptions import ReproError
from ..relational.candidate import CandidateTable
from ..sessions.persistence import table_fingerprint
from .protocol import (
    Event,
    InteractionMode,
    LabelApplied,
    event_from_wire,
)
from .service import SessionDescriptor, SessionServiceError
from .stepper import AnswerSet, LabelLike, validate_mode_options
from .transport import (
    DEFAULT_MAX_FRAME_BYTES,
    ConnectionClosedError,
    FramedConnection,
    Listener,
    TransportError,
    framed_pair,
)
from .worker import HELLO_KIND, serve_connection, worker_entry
from .wire import (
    ClusterServiceError,
    ClusterWorkerError,
    WorkerUnavailableError,
    rebuild_error,
    table_from_wire,
    table_to_wire,
)

__all__ = [
    "ClusterServiceError",
    "ClusterSessionService",
    "ClusterWorkerError",
    "WorkerUnavailableError",
    "table_from_wire",
    "table_to_wire",
]

#: Back-compat alias: tests and older callers imported the underscored name.
_rebuild_error = rebuild_error

#: Default worker count: one per core, capped so a big machine does not fork
#: dozens of interpreters for a demo.
DEFAULT_WORKERS = max(1, min(8, os.cpu_count() or 1))

#: How often the supervisor pings idle workers (seconds); ``None`` disables.
DEFAULT_HEARTBEAT_INTERVAL = 2.0
#: How long a heartbeat ping may take before the worker counts as dead.
DEFAULT_HEARTBEAT_TIMEOUT = 10.0
#: How long a spawned/external worker gets to dial in before start-up fails.
DEFAULT_START_TIMEOUT = 30.0

_BACKENDS = ("process", "thread", "external")


class _WorkerSlot:
    """The supervisor's view of one worker: connection, runner, and a lock.

    A worker executes one command at a time (its loop is serial), so the
    lock both serialises access to the connection and models the worker's
    real capacity; commands for sessions on *different* workers run in
    parallel.  The slot outlives any single worker incarnation —
    ``generation`` counts respawns.
    """

    __slots__ = ("index", "lock", "conn", "runner", "pid", "generation")

    def __init__(self, index: int) -> None:
        self.index = index
        self.lock = threading.RLock()
        self.conn: FramedConnection | None = None
        self.runner: object | None = None  # Process, Thread, or None (external)
        self.pid: int | None = None
        self.generation = 0

    def exchange(self, payload: dict[str, object]) -> dict[str, object]:
        """One send/recv round trip.  Caller holds :attr:`lock`."""
        if self.conn is None:
            raise ConnectionClosedError(f"worker {self.index} has no connection")
        self.conn.send(payload)
        reply = self.conn.recv()
        if not isinstance(reply, dict):
            raise TransportError(
                f"worker {self.index} sent a non-object reply of type {type(reply).__name__}"
            )
        return reply


class ClusterSessionService:
    """Shards sessions across N supervised workers behind the `SessionService` API.

    Parameters
    ----------
    num_workers:
        How many workers to run (default: one per core, capped at 8).  Each
        runs its own :class:`~repro.service.service.SessionService`.
    mp_context:
        The :mod:`multiprocessing` start method for ``backend="process"``
        (default ``"spawn"`` — safe in processes that also run threads or an
        asyncio loop; pass ``"fork"`` on POSIX for faster start-up when that
        does not apply).
    backend:
        ``"process"`` (default) spawns local worker processes that dial back
        to the supervisor's listener; ``"thread"`` runs the worker loops on
        in-process threads over socketpairs (no spawn cost, no multi-core
        speedup — for tests, fault injection, and single-core boxes);
        ``"external"`` only listens — start workers on any machine with
        ``python -m repro.service.worker --connect HOST:PORT --token TOKEN``.
        Pass ``listen`` and ``worker_token`` explicitly for external
        clusters: the constructor blocks until every worker has dialled in,
        so both must be agreed with the operators beforehand.
    listen:
        The listener's ``(host, port)`` for process/external backends
        (default: a free loopback port; use ``("0.0.0.0", port)`` to accept
        remote workers).
    heartbeat_interval / heartbeat_timeout:
        Idle workers are pinged every ``heartbeat_interval`` seconds; a ping
        that fails — or takes longer than ``heartbeat_timeout`` — triggers
        recovery without waiting for the next command.  ``None`` disables
        the heartbeat (death is still detected by the broken socket on the
        next command).
    respawn:
        When ``True`` (default), a dead worker is transparently replaced:
        respawned, re-sent every registered table, re-resumed every lost
        session from its write-through document, and the in-flight command
        retried exactly once.  When ``False``, worker death raises
        :class:`~repro.service.wire.WorkerUnavailableError` naming the
        worker.
    start_timeout:
        How long a (re)spawned or external worker gets to dial in.
    connection_wrapper:
        ``(conn, worker_index) -> conn`` applied to every worker connection
        as it is adopted — the fault-injection seam
        (``tests.chaos.faults.FaultyTransport``).

    Thread-safety: every public method may be called from any thread, like
    the single-process service.  Commands against sessions on different
    workers run in parallel (that is the point); commands against the same
    worker serialise on its connection.  Exceptions mirror the
    single-process service — :class:`SessionServiceError` (unknown ids),
    ``ValueError`` / :class:`~repro.exceptions.StrategyError` (bad options),
    :class:`~repro.exceptions.InconsistentLabelError` (contradictions on a
    strict session) — re-raised in the parent with the worker's message;
    unrecoverable worker loss raises
    :class:`~repro.service.wire.WorkerUnavailableError`.

    Use as a context manager (or call :meth:`shutdown`) so the workers exit
    deterministically; spawned processes are daemonic, so an unclean exit
    cannot leak them past the parent.
    """

    def __init__(
        self,
        num_workers: int | None = None,
        mp_context: str = "spawn",
        *,
        backend: str = "process",
        listen: tuple[str, int] | None = None,
        heartbeat_interval: float | None = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        respawn: bool = True,
        start_timeout: float = DEFAULT_START_TIMEOUT,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        worker_token: str | None = None,
        connection_wrapper: Callable[[FramedConnection, int], FramedConnection] | None = None,
    ) -> None:
        count = DEFAULT_WORKERS if num_workers is None else num_workers
        if count < 1:
            raise ValueError(f"num_workers must be a positive integer, got {num_workers!r}")
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self._backend = backend
        self._context = multiprocessing.get_context(mp_context) if backend == "process" else None
        self._respawn = bool(respawn)
        self._heartbeat_interval = heartbeat_interval
        self._heartbeat_timeout = heartbeat_timeout
        self._start_timeout = start_timeout
        self._max_frame_bytes = max_frame_bytes
        self._connection_wrapper = connection_wrapper
        # External clusters need the token agreed *before* construction (the
        # constructor blocks until every worker has dialled in), so the
        # operator picks it and passes the same value to each worker's
        # ``--token``; for the other backends it is minted here.
        self._worker_token = worker_token or uuid.uuid4().hex
        self._lock = threading.RLock()
        self._broadcast_lock = threading.Lock()
        self._accept_lock = threading.Lock()
        self._stop = threading.Event()
        self._heartbeat_thread: threading.Thread | None = None
        self._tables: dict[str, CandidateTable] = {}
        self._broadcast_done: set[str] = set()
        self._sessions: dict[str, dict[str, object]] = {}
        self._pending_hellos: dict[str, list[tuple[FramedConnection, int | None]]] = {}
        self._closed = False
        self._listener = (
            Listener(*(listen or ("127.0.0.1", 0)), max_frame_bytes=max_frame_bytes)
            if backend in ("process", "external")
            else None
        )
        self._workers = [_WorkerSlot(index) for index in range(count)]
        try:
            # Launch every runner first (they dial in concurrently), then
            # adopt the connections; one ping per worker surfaces
            # import/start-up failures at construction, not first command.
            tokens = [self._launch(slot) for slot in self._workers]
            for slot, token in zip(self._workers, tokens, strict=True):
                self._attach(slot, token)
            for slot in self._workers:
                self._request(slot, {"cmd": "ping"})
            if self._heartbeat_interval and self._respawn:
                self._heartbeat_thread = threading.Thread(
                    target=self._heartbeat_loop, name="repro-cluster-heartbeat", daemon=True
                )
                self._heartbeat_thread.start()
        except BaseException:
            self.shutdown()
            raise

    # ------------------------------------------------------------------ #
    # Worker lifecycle: launch, handshake, recovery
    # ------------------------------------------------------------------ #
    def _launch(self, slot: _WorkerSlot) -> str | None:
        """Start the slot's runner; the hello token to await (None: connected)."""
        if self._backend == "thread":
            parent_conn, worker_conn = framed_pair(self._max_frame_bytes)
            try:
                thread = threading.Thread(
                    target=serve_connection,
                    args=(worker_conn,),
                    name=f"repro-cluster-{slot.index}",
                    daemon=True,
                )
                thread.start()
                slot.runner = thread
                slot.conn = self._wrap(parent_conn, slot)
            except BaseException:
                # Thread creation or a custom connection wrapper failed: the
                # pair has no owner yet, so both ends must close here (RPR012).
                parent_conn.close()
                worker_conn.close()
                raise
            slot.pid = os.getpid()
            return None
        if self._backend == "process":
            token = uuid.uuid4().hex
            process = self._context.Process(
                target=worker_entry,
                args=(self._listener.address, token, self._max_frame_bytes),
                name=f"repro-cluster-{slot.index}",
                daemon=True,
            )
            process.start()
            slot.runner = process
            return token
        return self._worker_token  # external: the operator starts the worker

    def _attach(self, slot: _WorkerSlot, token: str | None) -> None:
        """Adopt the inbound connection whose hello carries ``token``."""
        if token is None:
            return  # thread backend: connected at launch
        conn, pid = self._await_hello(token)
        slot.conn = self._wrap(conn, slot)
        slot.pid = pid

    def _wrap(self, conn: FramedConnection, slot: _WorkerSlot) -> FramedConnection:
        if self._connection_wrapper is not None:
            return self._connection_wrapper(conn, slot.index)
        return conn

    def _await_hello(self, token: str) -> tuple[FramedConnection, int | None]:
        """Accept inbound connections until one's hello matches ``token``.

        Hellos for *other* tokens are stashed (another recovery may be
        waiting for them — connections can arrive in any order), malformed
        ones dropped, so a stray client cannot occupy a worker slot.
        """
        deadline = time.monotonic() + self._start_timeout
        with self._accept_lock:
            while True:
                with self._lock:
                    stash = self._pending_hellos.get(token)
                    if stash:
                        entry = stash.pop(0)
                        if not stash:
                            del self._pending_hellos[token]
                        return entry
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ClusterServiceError(
                        f"no worker dialled in with the expected token within "
                        f"{self._start_timeout:.1f}s (listener {self._listener.address_text()})"
                    )
                try:
                    conn = self._listener.accept(timeout=min(remaining, 1.0))
                except ConnectionClosedError:
                    raise ClusterServiceError(
                        "the cluster listener closed while awaiting a worker"
                    ) from None
                except TransportError:
                    continue  # accept timeout: re-check the stash and deadline
                try:
                    conn.settimeout(5.0)
                    hello = conn.recv()
                    conn.settimeout(None)
                except TransportError:
                    conn.close()
                    continue
                if not isinstance(hello, dict) or hello.get("hello") != HELLO_KIND:
                    conn.close()
                    continue
                hello_token = hello.get("token")
                pid = hello.get("pid") if isinstance(hello.get("pid"), int) else None
                if hello_token == token:
                    return conn, pid
                if isinstance(hello_token, str):
                    with self._lock:
                        self._pending_hellos.setdefault(hello_token, []).append((conn, pid))
                else:
                    conn.close()

    def _recover_locked(self, slot: _WorkerSlot, cause: BaseException) -> None:
        """Replace a dead worker and replay its state.  Caller holds ``slot.lock``.

        Respawns the backend runner, re-registers every table the cluster
        knows, and re-resumes every session routed to this shard from its
        write-through document — under its original id, so routing is
        untouched.  Raises :class:`WorkerUnavailableError` when respawn is
        disabled or the replacement cannot be brought up.
        """
        with self._lock:
            closed = self._closed
        if closed:
            raise ClusterServiceError("the cluster session service is shut down")
        if not self._respawn:
            error = WorkerUnavailableError(
                f"cluster worker {slot.index} is unreachable "
                f"({type(cause).__name__}: {cause}) and respawn is disabled; "
                "its sessions are lost",
                worker_index=slot.index,
            )
            raise error from cause
        if slot.conn is not None:
            slot.conn.close()
        self._reap(slot)
        try:
            self._attach(slot, self._launch(slot))
            slot.generation += 1
            with self._lock:
                tables = dict(self._tables)
                sessions = {
                    sid: document
                    for sid, document in self._sessions.items()
                    if int(sid, 16) % len(self._workers) == slot.index
                }
            for table in tables.values():
                self._expect_ok(
                    slot.exchange({"cmd": "register_table", "table": table_to_wire(table)})
                )
            # Deterministic replay order; the documents carry everything —
            # labels, mode/strategy/k, strictness — so each session comes
            # back exactly where its last acknowledged command left it.
            for sid in sorted(sessions):
                document = sessions[sid]
                self._expect_ok(
                    slot.exchange(
                        {
                            "cmd": "resume",
                            "document": document,
                            "fingerprint": document.get("table_fingerprint"),
                            "session_id": sid,
                        }
                    )
                )
        except WorkerUnavailableError:
            raise
        except (TransportError, ClusterServiceError) as exc:
            error = WorkerUnavailableError(
                f"cluster worker {slot.index} died ({type(cause).__name__}: {cause}) "
                f"and its replacement could not be brought up ({exc}); "
                "its sessions are lost",
                worker_index=slot.index,
            )
            raise error from exc

    def _reap(self, slot: _WorkerSlot) -> None:
        """Collect the previous runner, if any (dead processes leave zombies)."""
        runner = slot.runner
        if runner is not None and hasattr(runner, "kill"):  # a Process
            if runner.is_alive():
                runner.kill()
            runner.join(timeout=5.0)
        # A thread runner exits on its own once its socketpair end closes.

    def _heartbeat_loop(self) -> None:
        """Ping idle workers; recover the ones that fail.  Daemon thread.

        Busy workers are skipped (non-blocking lock acquire): the command
        holding the lock detects death itself the moment the socket breaks,
        and pinging behind it would only queue latency.
        """
        while not self._stop.wait(self._heartbeat_interval):
            for slot in self._workers:
                if self._stop.is_set():
                    break
                if not slot.lock.acquire(blocking=False):
                    continue
                try:
                    try:
                        slot.conn.settimeout(self._heartbeat_timeout)
                        self._expect_ok(slot.exchange({"cmd": "ping"}))
                        slot.conn.settimeout(None)
                    except TransportError as exc:
                        try:
                            self._recover_locked(slot, exc)
                        except ReproError:
                            pass  # unrecoverable now; the next command reports it
                finally:
                    slot.lock.release()

    def kill_worker(self, index: int) -> None:
        """Ungracefully kill one worker — the fault-injection and ops hook.

        ``SIGKILL`` for process workers, severing the connection for
        thread/external ones (their serve loop sees EOF and exits).  Takes
        no locks: the point is to yank the worker out from under whatever is
        in flight, exactly like a machine loss.  With ``respawn=True`` the
        supervision layer absorbs it; with ``respawn=False`` the next
        command on this shard raises :class:`WorkerUnavailableError`.
        """
        slot = self._workers[index]
        runner = slot.runner
        if runner is not None and hasattr(runner, "kill"):
            runner.kill()
        conn = slot.conn
        if conn is not None:
            conn.close()

    def worker_states(self) -> list[dict[str, object]]:
        """A supervision snapshot per worker (approximate under concurrency).

        Each entry carries ``index``, ``backend``, ``generation`` (how many
        times the slot was respawned), ``pid`` (of the current incarnation;
        the supervisor's own pid for thread workers) and ``alive``.
        """
        states: list[dict[str, object]] = []
        for slot in self._workers:
            runner = slot.runner
            alive = runner.is_alive() if runner is not None else slot.conn is not None
            states.append(
                {
                    "index": slot.index,
                    "backend": self._backend,
                    "generation": slot.generation,
                    "pid": slot.pid,
                    "alive": bool(alive),
                }
            )
        return states

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    @property
    def num_workers(self) -> int:
        """How many workers the cluster runs."""
        return len(self._workers)

    @property
    def worker_address(self) -> tuple[str, int] | None:
        """Where workers dial in (process/external backends), else ``None``."""
        return self._listener.address if self._listener is not None else None

    @property
    def worker_token(self) -> str:
        """The token an external worker must present in its hello frame."""
        return self._worker_token

    def _check_open(self) -> None:
        with self._lock:
            if self._closed:
                raise ClusterServiceError("the cluster session service is shut down")

    def _shard(self, session_id: str) -> int:
        try:
            return int(session_id, 16) % len(self._workers)
        except (TypeError, ValueError):
            # Ids the cluster did not mint cannot name a shard; mirror the
            # single-process service's unknown-id error.
            raise SessionServiceError(f"unknown session id {session_id!r}") from None

    def worker_index(self, session_id: str) -> int:
        """The shard a session id routes to: ``int(session_id, 16) % num_workers``."""
        return self._shard(session_id)

    def _worker_for(self, session_id: str) -> _WorkerSlot:
        self._check_open()
        return self._workers[self._shard(session_id)]

    @staticmethod
    def _expect_ok(reply: dict[str, object]) -> object:
        if reply.get("status") == "ok":
            return reply.get("result")
        raise rebuild_error(reply)

    def _request(self, slot: _WorkerSlot, payload: dict[str, object]) -> object:
        """One supervised round trip: exchange, recover on death, retry once.

        The retry is observationally exactly-once: a command whose reply was
        lost was never recorded in the supervisor's write-through document,
        so the replayed worker is in the pre-command state and the retry
        applies it for the first time — label-driven replay makes the rerun
        indistinguishable from an undisturbed first run.
        """
        with slot.lock:
            try:
                reply = slot.exchange(payload)
            except TransportError as exc:
                self._recover_locked(slot, exc)
                try:
                    reply = slot.exchange(payload)
                except TransportError as retry_exc:
                    error = WorkerUnavailableError(
                        f"cluster worker {slot.index} died again replaying "
                        f"{payload.get('cmd')!r} after a respawn ({retry_exc}); "
                        "its sessions are lost",
                        worker_index=slot.index,
                    )
                    raise error from retry_exc
            return self._consume_reply(payload, reply)

    def _consume_reply(self, payload: dict[str, object], reply: dict[str, object]) -> object:
        """Harvest write-through documents, then unwrap the reply."""
        documents = reply.get("documents")
        if isinstance(documents, dict):
            with self._lock:
                if not self._closed:
                    self._sessions.update(documents)
        ok = reply.get("status") == "ok"
        if ok and payload.get("cmd") == "close":
            with self._lock:
                self._sessions.pop(payload.get("session_id"), None)
        if not ok:
            raise rebuild_error(reply)
        return reply.get("result")

    def _broadcast(self, payload: dict[str, object]) -> list[object]:
        self._check_open()
        return [self._request(slot, payload) for slot in self._workers]

    @staticmethod
    def _label_to_wire(label: LabelLike) -> object:
        value = getattr(label, "value", label)
        if not isinstance(value, (str, bool)):
            raise ClusterServiceError(
                f"label {label!r} cannot cross the process boundary; "
                "pass a Label, its string value, or a boolean"
            )
        return value

    @staticmethod
    def _strategy_to_wire(strategy: Strategy | str | None) -> str | None:
        if strategy is None or isinstance(strategy, str):
            return strategy
        raise ClusterServiceError(
            "a cluster session takes its strategy by registry name "
            f"(got the instance {strategy!r}); strategy objects cannot cross "
            "the process boundary"
        )

    # ------------------------------------------------------------------ #
    # Table registry
    # ------------------------------------------------------------------ #
    def register_table(self, table: CandidateTable) -> str:
        """Register a table and broadcast it to every worker (idempotent).

        Returns the content fingerprint.  The rows travel to each worker
        exactly once per cluster (plus once more to any worker that gets
        respawned); re-registering the same content is free.  Raises
        :class:`ClusterServiceError` for cell values JSON cannot carry, or
        when a worker is unreachable and cannot be replaced.
        """
        fingerprint = table_fingerprint(table)
        with self._broadcast_lock:
            with self._lock:
                if self._closed:
                    raise ClusterServiceError("the cluster session service is shut down")
                if fingerprint in self._broadcast_done:
                    return fingerprint
                # Recorded before the broadcast so a worker dying *during*
                # the broadcast gets this table replayed like any other.
                self._tables.setdefault(fingerprint, table)
            wire = table_to_wire(table)
            echoed = [
                self._request(slot, {"cmd": "register_table", "table": wire})
                for slot in self._workers
            ]
            if any(echo != fingerprint for echo in echoed):
                raise ClusterServiceError(
                    f"table {table.name!r} changed fingerprint crossing the wire; "
                    "its cell values do not round-trip through JSON"
                )
            with self._lock:
                self._broadcast_done.add(fingerprint)
        return fingerprint

    def tables(self) -> dict[str, str]:
        """The registered tables: ``fingerprint -> table name``."""
        with self._lock:
            return {fp: table.name for fp, table in self._tables.items()}

    def table(self, fingerprint: str) -> CandidateTable:
        """The registered table with the given fingerprint.

        Served from the facade's own registry (every registered table is on
        every worker); raises :class:`SessionServiceError` for an unknown
        fingerprint.
        """
        with self._lock:
            try:
                return self._tables[fingerprint]
            except KeyError:
                raise SessionServiceError(
                    f"no table registered under fingerprint {fingerprint!r}"
                ) from None

    def _table_reference(
        self, table: CandidateTable | str
    ) -> tuple[str, dict | None, CandidateTable | None]:
        """How the routed worker gets the table: ``(fingerprint, inline wire, instance)``.

        A table instance the cluster has not fully broadcast yet travels
        *inline* with the create/resume command instead of being broadcast
        up front — the worker-side create is atomic, so a failed command
        registers the table nowhere; :meth:`_finish_registration` broadcasts
        it to the remaining workers only after success.  Fully-broadcast
        fingerprints yield no inline form.
        """
        if isinstance(table, CandidateTable):
            fingerprint = table_fingerprint(table)
            with self._lock:
                if fingerprint in self._broadcast_done:
                    return fingerprint, None, None
            return fingerprint, table_to_wire(table), table
        instance = self.table(table)  # raises SessionServiceError when unknown
        with self._lock:
            if table in self._broadcast_done:
                return table, None, None
        return table, table_to_wire(instance), instance

    def _finish_registration(
        self,
        fingerprint: str,
        table: CandidateTable,
        wire: dict,
        owner: _WorkerSlot,
    ) -> None:
        """Record a table the routed worker just adopted; broadcast to the rest."""
        with self._broadcast_lock:
            with self._lock:
                if self._closed or fingerprint in self._broadcast_done:
                    return  # a concurrent command completed the broadcast
            for slot in self._workers:
                if slot is not owner:
                    self._request(slot, {"cmd": "register_table", "table": wire})
            with self._lock:
                self._tables.setdefault(fingerprint, table)
                self._broadcast_done.add(fingerprint)

    @staticmethod
    def _mint_session_id(session_id: str | None) -> str:
        """A fresh hex id, or the caller's — which must name a shard."""
        if session_id is None:
            return uuid.uuid4().hex
        try:
            int(session_id, 16)
        except (TypeError, ValueError):
            raise ClusterServiceError(
                f"cluster session ids must be hexadecimal strings, got {session_id!r} "
                "(the worker shard is derived from the id)"
            ) from None
        return session_id

    # ------------------------------------------------------------------ #
    # Session lifecycle
    # ------------------------------------------------------------------ #
    def create(
        self,
        table: CandidateTable | str,
        mode: InteractionMode | str = InteractionMode.GUIDED,
        strategy: Strategy | str | None = None,
        k: int | None = None,
        strict: bool = True,
        session_id: str | None = None,
    ) -> SessionDescriptor:
        """Create a session on the worker its id hashes to.

        Arguments and validation are those of
        :meth:`~repro.service.service.SessionService.create`; the strategy
        must be a registry *name* (instances cannot cross the process
        boundary) and an explicit ``session_id`` must be hexadecimal (the
        shard is derived from it).  A new table instance travels inline to
        the routed worker and is broadcast to the rest only after success,
        so a failed create registers neither a session nor a table —
        anywhere in the cluster.
        """
        strategy_name = self._strategy_to_wire(strategy)
        validate_mode_options(mode, {"strategy": strategy_name, "k": k})
        if strategy_name is not None:
            create_strategy(strategy_name)  # unknown names fail before any send
        fingerprint, wire, instance = self._table_reference(table)
        session_id = self._mint_session_id(session_id)
        worker = self._worker_for(session_id)
        request = {
            "cmd": "create",
            "fingerprint": fingerprint,
            "mode": mode.value if isinstance(mode, InteractionMode) else mode,
            "strategy": strategy_name,
            "k": k,
            "strict": strict,
            "session_id": session_id,
        }
        if wire is not None:
            request["table"] = wire
        payload = self._request(worker, request)
        if wire is not None:
            with self._lock:
                # Recorded immediately: if this worker dies before the
                # broadcast below completes, recovery can still replay the
                # table (and this session) from the supervisor's registry.
                self._tables.setdefault(fingerprint, instance)
            self._finish_registration(fingerprint, instance, wire, worker)
        return SessionDescriptor.from_dict(payload)

    def resume(
        self,
        payload: dict[str, object],
        table: CandidateTable | str | None = None,
        session_id: str | None = None,
    ) -> SessionDescriptor:
        """Restore a saved session document on the worker its new id hashes to.

        Semantics of :meth:`~repro.service.service.SessionService.resume`,
        including the strictness pass-through (a lenient session resumes
        lenient on its worker) and the no-trace-on-failure guarantee: a new
        table instance travels inline to the routed worker and is broadcast
        to the rest only after the resume succeeds, so a malformed or
        corrupt document registers nothing anywhere.  The table is found
        like there — explicit instance, explicit fingerprint, or the
        document's fingerprint, which must already be registered with the
        cluster.
        """
        if table is None:
            fingerprint = payload.get("table_fingerprint")
            if not isinstance(fingerprint, str):
                raise SessionServiceError(
                    "the session document carries no table fingerprint; pass the table explicitly"
                )
            fingerprint, wire, instance = self._table_reference(fingerprint)
        else:
            fingerprint, wire, instance = self._table_reference(table)
        session_id = self._mint_session_id(session_id)
        worker = self._worker_for(session_id)
        request = {
            "cmd": "resume",
            "document": payload,
            "fingerprint": fingerprint,
            "session_id": session_id,
        }
        if wire is not None:
            request["table"] = wire
        reply = self._request(worker, request)
        if wire is not None:
            with self._lock:
                self._tables.setdefault(fingerprint, instance)
            self._finish_registration(fingerprint, instance, wire, worker)
        return SessionDescriptor.from_dict(reply)

    def session_ids(self) -> list[str]:
        """Ids of all live sessions, across all workers."""
        return [sid for ids in self._broadcast({"cmd": "session_ids"}) for sid in ids]

    def __len__(self) -> int:
        return len(self.session_ids())

    def describe(self, session_id: str) -> SessionDescriptor:
        """A snapshot of the session's kind and progress (from its worker)."""
        reply = self._request(
            self._worker_for(session_id), {"cmd": "describe", "session_id": session_id}
        )
        return SessionDescriptor.from_dict(reply)

    def close(self, session_id: str) -> SessionDescriptor:
        """Remove a session from its worker and return its final snapshot."""
        reply = self._request(
            self._worker_for(session_id), {"cmd": "close", "session_id": session_id}
        )
        return SessionDescriptor.from_dict(reply)

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    def next_question(self, session_id: str) -> Event:
        """The session's next protocol event, computed in its worker."""
        wire = self._request(
            self._worker_for(session_id), {"cmd": "next_question", "session_id": session_id}
        )
        return event_from_wire(wire)

    def answer(
        self, session_id: str, label: LabelLike, tuple_id: int | None = None
    ) -> LabelApplied:
        """Apply one label in the session's worker.

        Exceptions as for :meth:`~repro.service.service.SessionService.answer`,
        re-raised in the parent with the worker's message.
        """
        wire = self._request(
            self._worker_for(session_id),
            {
                "cmd": "answer",
                "session_id": session_id,
                "label": self._label_to_wire(label),
                "tuple_id": tuple_id,
            },
        )
        return event_from_wire(wire)

    def answer_many(self, session_id: str, answers: AnswerSet) -> list[LabelApplied]:
        """Apply a batch of ``tuple_id -> label`` answers in the worker.

        On a mid-batch error the events of the already-applied answers cross
        the boundary on the re-raised exception (``applied_events``), exactly
        like the single-process service.
        """
        pairs = answers.items() if hasattr(answers, "items") else answers
        wire_pairs = [
            [int(tuple_id), self._label_to_wire(label)] for tuple_id, label in pairs
        ]
        replies = self._request(
            self._worker_for(session_id),
            {"cmd": "answer_many", "session_id": session_id, "answers": wire_pairs},
        )
        return [event_from_wire(wire) for wire in replies]

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, session_id: str) -> dict[str, object]:
        """The session as a v3 persistence document, taken in its worker."""
        return self._request(
            self._worker_for(session_id), {"cmd": "save", "session_id": session_id}
        )

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the heartbeat, every worker, and the listener.  Idempotent.

        Live sessions die with their workers (save what must survive first);
        commands after shutdown raise :class:`ClusterServiceError`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=timeout)
        for slot in self._workers:
            with slot.lock:
                if slot.conn is None:
                    continue
                try:
                    slot.conn.send({"cmd": "shutdown"})
                    slot.conn.recv()
                except TransportError:
                    pass
                slot.conn.close()
        if self._listener is not None:
            self._listener.close()
        with self._lock:
            stashes = [entry for stash in self._pending_hellos.values() for entry in stash]
            self._pending_hellos.clear()
        for conn, _pid in stashes:
            conn.close()
        for slot in self._workers:
            runner = slot.runner
            if runner is None:
                continue
            if hasattr(runner, "kill"):
                runner.join(timeout=timeout)
                if runner.is_alive():  # pragma: no cover - stuck worker
                    runner.kill()
                    runner.join(timeout=timeout)
            else:
                runner.join(timeout=1.0)

    def __enter__(self) -> ClusterSessionService:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        with self._lock:
            state = "closed" if self._closed else "open"
            tables = len(self._tables)
            sessions = len(self._sessions)
        return (
            f"ClusterSessionService(workers={len(self._workers)}, "
            f"backend={self._backend!r}, tables={tables}, "
            f"tracked_sessions={sessions}, {state})"
        )
