"""A thread-safe, multi-tenant session service over the sans-IO stepper.

:class:`SessionService` is the facade a web / crowd frontend talks to: it
manages many concurrent :class:`~repro.service.stepper.InferenceSession`\\ s
by id over a fingerprint-keyed table registry, with a small
create / describe / question / answer / save / resume / close lifecycle.  All
methods exchange plain data (protocol events, descriptors, JSON documents),
so mapping the service onto a transport is mechanical —
``examples/serve_sessions.py`` does it with the stdlib ``http.server``.

Concurrency model: a registry lock guards the table and session maps, and
each session carries its own lock, so sessions advance independently — two
labelers never block each other, only concurrent commands against the *same*
session serialise.

Saved sessions use the v3 persistence format, which records the interaction
mode, strategy name, ``k`` and strictness alongside the labels; :meth:`resume`
therefore restores a top-k session as a top-k session — and a lenient session
as a lenient one — in this service instance or a completely fresh one.
"""

from __future__ import annotations

import threading
import uuid
from collections.abc import Callable
from dataclasses import dataclass

from ..core.strategies.base import Strategy
from ..exceptions import ReproError
from ..relational.candidate import CandidateTable
from .protocol import Event, InteractionMode, LabelApplied
from .stepper import AnswerSet, InferenceSession, LabelLike, validate_mode_options


class SessionServiceError(ReproError):
    """A service command referenced an unknown session, table, or lifecycle state."""


@dataclass(frozen=True)
class SessionDescriptor:
    """A snapshot of one managed session, safe to serialise to clients.

    ``strict`` reports whether the session rejects contradicting labels, so a
    client can tell a lenient (crowd/noisy) session from a strict one — in
    particular after a save/resume cycle.
    """

    session_id: str
    mode: str
    strategy: str | None
    k: int | None
    strict: bool
    table_fingerprint: str
    table_name: str
    num_candidates: int
    num_labels: int
    converged: bool

    def as_dict(self) -> dict[str, object]:
        """Plain-dictionary form for JSON responses."""
        return {
            "session_id": self.session_id,
            "mode": self.mode,
            "strategy": self.strategy,
            "k": self.k,
            "strict": self.strict,
            "table_fingerprint": self.table_fingerprint,
            "table_name": self.table_name,
            "num_candidates": self.num_candidates,
            "num_labels": self.num_labels,
            "converged": self.converged,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> SessionDescriptor:
        """Rebuild a descriptor from its :meth:`as_dict` form (wire transport)."""
        return cls(**{field: payload[field] for field in cls.__dataclass_fields__})


class _ManagedSession:
    """A stepper plus the bookkeeping the service needs around it."""

    __slots__ = ("session_id", "stepper", "fingerprint", "strategy_name", "lock")

    def __init__(
        self,
        session_id: str,
        stepper: InferenceSession,
        fingerprint: str,
        strategy_name: str | None,
    ) -> None:
        self.session_id = session_id
        self.stepper = stepper
        self.fingerprint = fingerprint
        self.strategy_name = strategy_name
        self.lock = threading.Lock()


class SessionService:
    """Manages many concurrent inference sessions over registered tables.

    Thread-safety: every public method may be called from any thread.  A
    registry lock guards the table and session maps; each session carries its
    own lock, so commands against *distinct* sessions run concurrently while
    commands against the *same* session serialise in arrival order.  Methods
    that reference a session raise :class:`SessionServiceError` when the id
    is unknown — including after :meth:`close` (so an answer racing a close
    fails cleanly rather than resurrecting the session).

    ``document_sink`` is the write-through hook the cluster's supervision
    layer builds on: when set, every state-changing command (create / resume
    / answer / answer_many) calls ``document_sink(session_id, document)``
    with the session's fresh v3 persistence document before returning — the
    same document :meth:`save` produces, taken under the session lock.  A
    supervisor that stores these can replay any session onto a fresh worker
    after a crash.  The sink runs inline on the command path; keep it cheap
    (append to a dict, enqueue) and never let it raise.
    """

    def __init__(
        self,
        document_sink: Callable[[str, dict[str, object]], None] | None = None,
    ) -> None:
        self._lock = threading.RLock()
        self._tables: dict[str, CandidateTable] = {}
        self._sessions: dict[str, _ManagedSession] = {}
        self._document_sink = document_sink

    # ------------------------------------------------------------------ #
    # Table registry
    # ------------------------------------------------------------------ #
    def register_table(self, table: CandidateTable) -> str:
        """Register a candidate table and return its fingerprint (idempotent).

        Registering the same table (by content) twice keeps the first
        instance.  Never raises for a valid table; the fingerprint hashing
        cost is paid once per table instance (memoised).
        """
        from ..sessions.persistence import table_fingerprint

        fingerprint = table_fingerprint(table)
        with self._lock:
            self._tables.setdefault(fingerprint, table)
        return fingerprint

    def tables(self) -> dict[str, str]:
        """The registered tables: ``fingerprint -> table name``."""
        with self._lock:
            return {fp: table.name for fp, table in self._tables.items()}

    def table(self, fingerprint: str) -> CandidateTable:
        """The registered table with the given fingerprint.

        Raises :class:`SessionServiceError` for an unknown fingerprint.
        """
        with self._lock:
            try:
                return self._tables[fingerprint]
            except KeyError:
                raise SessionServiceError(
                    f"no table registered under fingerprint {fingerprint!r}"
                ) from None

    def _peek_table(self, table: CandidateTable | str) -> tuple[CandidateTable, str]:
        """Resolve a table reference *without* mutating the registry.

        A table instance is fingerprinted but not yet registered — the
        registration happens atomically with the session registration in
        :meth:`_commit_session`, so a create/resume that fails validation
        later leaves no trace in the registry.
        """
        if isinstance(table, CandidateTable):
            from ..sessions.persistence import table_fingerprint

            return table, table_fingerprint(table)
        return self.table(table), table

    def _commit_session(self, managed: _ManagedSession, table: CandidateTable) -> None:
        """Register a fully built session (and its table) in one locked step."""
        with self._lock:
            if managed.session_id in self._sessions:
                raise SessionServiceError(
                    f"session id {managed.session_id!r} is already in use"
                )
            self._tables.setdefault(managed.fingerprint, table)
            self._sessions[managed.session_id] = managed

    # ------------------------------------------------------------------ #
    # Session lifecycle
    # ------------------------------------------------------------------ #
    def create(
        self,
        table: CandidateTable | str,
        mode: InteractionMode | str = InteractionMode.GUIDED,
        strategy: Strategy | str | None = None,
        k: int | None = None,
        strict: bool = True,
        session_id: str | None = None,
    ) -> SessionDescriptor:
        """Create a session over a table (instance, or fingerprint of a registered one).

        Options are validated against the mode up front (see
        :func:`~repro.service.stepper.validate_mode_options`): raises
        :class:`ValueError` for options the mode does not accept or an
        unknown mode name, :class:`~repro.exceptions.StrategyError` for
        invalid option values or an unknown strategy name, and
        :class:`SessionServiceError` for an unknown table fingerprint or an
        already-used ``session_id``.  Neither a session nor the table is
        registered when any step fails.

        ``session_id`` lets a routing layer (e.g.
        :class:`~repro.service.cluster.ClusterSessionService`) pick the id
        up front; by default the service generates one.
        """
        parsed_mode = validate_mode_options(mode, {"strategy": strategy, "k": k})
        resolved, fingerprint = self._peek_table(table)
        stepper = InferenceSession(
            resolved, mode=parsed_mode, strategy=strategy, k=k, strict=strict
        )
        strategy_name = (
            stepper.strategy.name if parsed_mode is InteractionMode.GUIDED else None
        )
        if session_id is None:
            session_id = uuid.uuid4().hex
        managed = _ManagedSession(session_id, stepper, fingerprint, strategy_name)
        self._commit_session(managed, resolved)
        with managed.lock:
            self._write_through(managed)
            return self._describe(managed)

    def session_ids(self) -> list[str]:
        """Ids of all live sessions."""
        with self._lock:
            return list(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def _managed(self, session_id: str) -> _ManagedSession:
        with self._lock:
            try:
                return self._sessions[session_id]
            except KeyError:
                raise SessionServiceError(f"unknown session id {session_id!r}") from None

    def _describe(self, managed: _ManagedSession) -> SessionDescriptor:
        stepper = managed.stepper
        return SessionDescriptor(
            session_id=managed.session_id,
            mode=stepper.mode.value,
            strategy=managed.strategy_name,
            k=stepper.k if stepper.mode is InteractionMode.TOP_K else None,
            strict=stepper.state.strict,
            table_fingerprint=managed.fingerprint,
            table_name=stepper.table.name,
            num_candidates=len(stepper.table),
            # Count labels in the state, not this sitting's trace, so a
            # resumed session reports the labels it restored.
            num_labels=len(stepper.state.labeled_ids()),
            converged=stepper.is_converged(),
        )

    def describe(self, session_id: str) -> SessionDescriptor:
        """A snapshot of the session's kind and progress.

        Taken under the session lock, so the label count and convergence
        flag are mutually consistent.  Raises :class:`SessionServiceError`
        for an unknown session id.
        """
        managed = self._managed(session_id)
        with managed.lock:
            return self._describe(managed)

    def close(self, session_id: str) -> SessionDescriptor:
        """Remove a session from the service and return its final snapshot.

        Raises :class:`SessionServiceError` for an unknown session id — in
        particular on a double close (exactly one of two racing closes
        wins).  An in-flight command holding the session lock finishes
        before the final snapshot is taken.
        """
        with self._lock:
            try:
                managed = self._sessions.pop(session_id)
            except KeyError:
                raise SessionServiceError(f"unknown session id {session_id!r}") from None
        with managed.lock:
            return self._describe(managed)

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    def next_question(self, session_id: str) -> Event:
        """The session's next protocol event (question, batch, or converged).

        Raises :class:`SessionServiceError` for an unknown session id and
        :class:`~repro.exceptions.StrategyError` when the strategy cannot
        choose; the session is left unchanged on error.
        """
        managed = self._managed(session_id)
        with managed.lock:
            return managed.stepper.next_question()

    def answer(
        self, session_id: str, label: LabelLike, tuple_id: int | None = None
    ) -> LabelApplied:
        """Apply one label to the session (see :meth:`InferenceSession.submit`).

        Raises :class:`SessionServiceError` for an unknown session id,
        :class:`~repro.exceptions.StrategyError` when a batch/manual session
        is answered without ``tuple_id``, and
        :class:`~repro.exceptions.InconsistentLabelError` for an unparseable
        label or a contradicting one on a strict session.
        """
        managed = self._managed(session_id)
        with managed.lock:
            applied = managed.stepper.submit(label, tuple_id=tuple_id)
            self._write_through(managed)
            return applied

    def answer_many(self, session_id: str, answers: AnswerSet) -> list[LabelApplied]:
        """Apply a batch of ``tuple_id -> label`` answers to the session.

        The whole batch runs under the session lock (concurrent callers see
        it as atomic); exceptions as for :meth:`answer`.  Tuples made
        uninformative by earlier answers of the same batch are skipped, per
        :meth:`InferenceSession.submit_many`.
        """
        managed = self._managed(session_id)
        with managed.lock:
            try:
                return managed.stepper.submit_many(answers)
            finally:
                # Even on a mid-batch error: the applied prefix is real state
                # and a supervising write-through must not lose it.
                self._write_through(managed)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, session_id: str) -> dict[str, object]:
        """The session as a v3 persistence document (labels + session kind + strictness).

        Taken under the session lock, so the document is a consistent
        snapshot even while other threads are answering.  Raises
        :class:`SessionServiceError` for an unknown session id.
        """
        managed = self._managed(session_id)
        with managed.lock:
            return self._document(managed)

    def _document(self, managed: _ManagedSession) -> dict[str, object]:
        """The session's v3 document.  Caller holds the session lock."""
        from ..sessions.persistence import serialize_state

        stepper = managed.stepper
        return serialize_state(
            stepper.state,
            mode=stepper.mode.value,
            strategy=managed.strategy_name,
            k=stepper.k if stepper.mode is InteractionMode.TOP_K else None,
        )

    def _write_through(self, managed: _ManagedSession) -> None:
        """Push the session's current document to the sink, if one is set.

        Caller holds the session lock, so the document is the state the
        command just produced — the supervisor's copy is never older than
        the last acknowledged command.
        """
        if self._document_sink is not None:
            self._document_sink(managed.session_id, self._document(managed))

    def resume(
        self,
        payload: dict[str, object],
        table: CandidateTable | str | None = None,
        session_id: str | None = None,
    ) -> SessionDescriptor:
        """Restore a saved session as a new live session of the recorded kind.

        The table is taken from ``table`` (instance or fingerprint) or looked
        up in the registry by the document's fingerprint.  v1 documents (no
        session metadata) resume as guided sessions.  The document's
        strictness (v3; ``True`` for v1/v2) is passed through to the replayed
        state, so a lenient session resumes lenient — a contradicting label
        it tolerated before the save is tolerated after the resume.

        Raises :class:`SessionServiceError` when the fingerprint is unknown
        (or the document carries none and no table is passed),
        :class:`~repro.sessions.persistence.SessionPersistenceError` for a
        malformed, corrupted, or wrong-table document, and the
        :meth:`create` validation errors for inconsistent session metadata.
        Neither a session nor the table is registered when any step fails.
        """
        from ..sessions.persistence import deserialize_state, session_options

        if table is None:
            fingerprint = payload.get("table_fingerprint")
            if not isinstance(fingerprint, str):
                raise SessionServiceError(
                    "the session document carries no table fingerprint; pass the table explicitly"
                )
            resolved, fingerprint = self._peek_table(fingerprint)
        else:
            resolved, fingerprint = self._peek_table(table)
        options = session_options(payload)
        state = deserialize_state(payload, resolved, strict=options["strict"])
        mode = validate_mode_options(
            options["mode"], {"strategy": options["strategy"], "k": options["k"]}
        )
        stepper = InferenceSession(
            resolved,
            mode=mode,
            strategy=options["strategy"],
            k=options["k"],
            state=state,
        )
        strategy_name = stepper.strategy.name if mode is InteractionMode.GUIDED else None
        if session_id is None:
            session_id = uuid.uuid4().hex
        managed = _ManagedSession(session_id, stepper, fingerprint, strategy_name)
        self._commit_session(managed, resolved)
        with managed.lock:
            self._write_through(managed)
            return self._describe(managed)
