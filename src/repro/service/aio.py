"""The asyncio-native session service: ``AsyncSessionService``.

:class:`AsyncSessionService` is the asyncio front door to the sans-IO
machinery of this package.  It wraps the thread-safe
:class:`~repro.service.service.SessionService` rather than reimplementing it:
every command delegates to the synchronous service, with the CPU-bound part
(strategy scoring, label propagation, fingerprint hashing) offloaded to a
*bounded* thread-pool executor so the event loop never blocks on inference
work.  What the async layer adds on top:

* **per-session ordering** — an :class:`asyncio.Lock` per session serialises
  commands against the same session, so the event stream of a session is a
  faithful, gap-free log of what happened to it (the wrapped service's
  threading locks only guarantee mutual exclusion, not the orderly
  command → event pairing a stream consumer needs);
* **backpressure on create** — with ``max_sessions`` set, :meth:`create` and
  :meth:`resume` *await* until a session slot frees up instead of letting an
  unbounded number of live sessions accumulate;
* **event streams** — every protocol event a session produces is also
  published to its stream; ``async for event in service.events(session_id)``
  first replays the session's history, then yields live events (in JSON wire
  form) until the session is closed.

Task-safety: one :class:`AsyncSessionService` instance belongs to one event
loop (its locks, queues and semaphore bind to the loop on first use).  Within
that loop any number of tasks may call it concurrently — distinct sessions
advance in parallel (up to ``max_workers`` inference steps at a time), and
commands against the same session queue up on its lock.  The *wrapped*
:class:`~repro.service.service.SessionService` stays thread-safe, so sharing
it with synchronous threads is allowed; sessions created behind the facade's
back are adopted on first touch (they hold no backpressure slot), and a
session *closed* behind the facade's back is reaped — its streams ended, its
slot freed — by the next facade command that touches it (until then its
stream consumers keep waiting; prefer closing through the facade).

Quickstart::

    async with AsyncSessionService(max_sessions=256) as service:
        descriptor = await service.create(table, strategy="lookahead-entropy")
        sid = descriptor.session_id
        while True:
            event = await service.next_question(sid)
            if isinstance(event, Converged):
                break
            await service.answer(sid, my_answer_for(event))
        await service.close(sid)
"""

from __future__ import annotations

import asyncio
import functools
from collections.abc import AsyncIterator, Callable
from typing import TypeVar

from ..core.parallel import create_thread_pool
from ..core.strategies.base import Strategy
from ..relational.candidate import CandidateTable
from .protocol import Event, InteractionMode, LabelApplied, event_to_wire
from .service import SessionDescriptor, SessionService, SessionServiceError
from .stepper import AnswerSet, LabelLike

T = TypeVar("T")

#: Default size of the inference executor: enough to overlap a few CPU-bound
#: strategy steps without oversubscribing a small container.
DEFAULT_MAX_WORKERS = 4


#: Default per-subscriber event-queue bound (see ``stream_buffer``).
DEFAULT_STREAM_BUFFER = 256


class _StreamSubscriber:
    """One consumer's bounded queue plus its lag state."""

    __slots__ = ("queue", "dropped")

    def __init__(self, buffer_size: int) -> None:
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=buffer_size)
        self.dropped = False


class _SessionStream:
    """The event log of one session plus its live subscribers.

    ``history`` holds every published wire event in order; each subscriber
    carries a *bounded* :class:`asyncio.Queue` that receives events published
    after the subscription.  A subscriber whose queue overflows — a stream
    consumer that stalled while the session kept producing — is marked
    ``dropped``: it receives no further events and its stream ends once it
    has drained what it already buffered, so one stalled consumer can never
    grow memory without limit.  Publishing after :meth:`finish` is
    *impossible* by contract: the event is dropped, recorded in neither the
    history nor any queue (the sentinel marking the end of each queue stays
    the final item).  All mutation happens on the event loop thread, between
    awaits, so no further locking is needed.
    """

    __slots__ = ("history", "subscribers", "closed", "buffer_size")

    def __init__(self, buffer_size: int = DEFAULT_STREAM_BUFFER) -> None:
        self.history: list[dict[str, object]] = []
        self.subscribers: list[_StreamSubscriber] = []
        self.closed = False
        self.buffer_size = buffer_size

    def subscribe(self) -> _StreamSubscriber:
        subscriber = _StreamSubscriber(self.buffer_size)
        self.subscribers.append(subscriber)
        return subscriber

    def _offer(self, subscriber: _StreamSubscriber, item: dict | None) -> None:
        if subscriber.dropped:
            return
        try:
            subscriber.queue.put_nowait(item)
        except asyncio.QueueFull:
            subscriber.dropped = True

    def publish(self, wire: dict[str, object]) -> bool:
        """Record and fan out one event; a no-op returning False after :meth:`finish`."""
        if self.closed:
            return False
        self.history.append(wire)
        for subscriber in self.subscribers:
            self._offer(subscriber, wire)
        return True

    def finish(self) -> None:
        if self.closed:
            return
        self.closed = True
        for subscriber in self.subscribers:
            self._offer(subscriber, None)


class AsyncSessionService:
    """Asyncio facade over :class:`~repro.service.service.SessionService`.

    Parameters
    ----------
    service:
        The synchronous service to wrap (default: a fresh one).  Sharing a
        populated service is supported; its pre-existing sessions are adopted
        lazily and never count against ``max_sessions``.
    max_sessions:
        Backpressure limit: how many live sessions :meth:`create` /
        :meth:`resume` admit before they start *awaiting* a :meth:`close`.
        ``None`` (the default) disables the limit.
    max_workers:
        Size of the bounded thread pool the CPU-bound inference steps run on.
        This caps how many sessions make progress simultaneously; further
        commands queue in the executor, they do not block the loop.  When
        wrapping a :class:`~repro.service.cluster.ClusterSessionService`,
        size it at least to the cluster's worker count — each executor
        thread blocks on one worker pipe, so fewer threads than workers
        leaves processes idle.
    stream_buffer:
        Bound of each stream subscriber's event queue.  A consumer that
        falls more than this many events behind is disconnected (its stream
        ends after it drains what it buffered) instead of growing memory
        without limit.

    Use as an async context manager (or call :meth:`aclose`) so the executor
    threads are released deterministically.
    """

    def __init__(
        self,
        service: SessionService | None = None,
        *,
        max_sessions: int | None = None,
        max_workers: int = DEFAULT_MAX_WORKERS,
        stream_buffer: int = DEFAULT_STREAM_BUFFER,
    ) -> None:
        if max_sessions is not None and max_sessions < 1:
            raise ValueError(f"max_sessions must be a positive integer, got {max_sessions!r}")
        if max_workers < 1:
            raise ValueError(f"max_workers must be a positive integer, got {max_workers!r}")
        if stream_buffer < 1:
            raise ValueError(f"stream_buffer must be a positive integer, got {stream_buffer!r}")
        self.service = service if service is not None else SessionService()
        self.max_sessions = max_sessions
        self.stream_buffer = stream_buffer
        self._slots = asyncio.Semaphore(max_sessions) if max_sessions is not None else None
        self._slot_holders: set[str] = set()
        self._executor = create_thread_pool(
            max_workers=max_workers, thread_name_prefix="repro-aio"
        )
        self._locks: dict[str, asyncio.Lock] = {}
        self._streams: dict[str, _SessionStream] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    async def _call(self, fn: Callable[..., T], *args: object, **kwargs: object) -> T:
        """Run a synchronous service call on the bounded executor."""
        if self._closed:
            raise SessionServiceError("the async session service is closed")
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, functools.partial(fn, *args, **kwargs)
        )

    def _register(self, session_id: str, holds_slot: bool) -> None:
        # setdefault, not assignment: another task may have adopted the
        # session (visible in the wrapped service mid-create) and subscribed
        # to its stream already — replacing the lock/stream would orphan
        # those subscribers and void the per-session ordering.
        self._locks.setdefault(session_id, asyncio.Lock())
        self._streams.setdefault(session_id, _SessionStream(self.stream_buffer))
        if holds_slot:
            self._slot_holders.add(session_id)

    async def _adopt_if_foreign(self, session_id: str) -> None:
        """Adopt a session created directly on the wrapped sync service.

        The membership check runs on the executor: with a slow backing
        (e.g. a :class:`~repro.service.cluster.ClusterSessionService`,
        where ``session_ids`` is a pipe broadcast to every worker) a
        synchronous call here would stall the whole event loop on every
        unknown-id command.
        """
        if self._closed or session_id in self._locks:
            return
        known = await self._call(self.service.session_ids)
        if self._closed:
            return  # never re-populate the maps aclose() cleared
        if session_id in known:
            self._register(session_id, holds_slot=False)

    async def _lock_for(self, session_id: str) -> asyncio.Lock:
        if self._closed:
            raise SessionServiceError("the async session service is closed")
        await self._adopt_if_foreign(session_id)
        if self._closed:
            raise SessionServiceError("the async session service is closed")
        try:
            return self._locks[session_id]
        except KeyError:
            raise SessionServiceError(f"unknown session id {session_id!r}") from None

    def _reap(self, session_id: str) -> None:
        """Drop the facade state of a session that left the wrapped service.

        Ends its event streams and frees its backpressure slot; a no-op for
        untracked ids.
        """
        self._locks.pop(session_id, None)
        stream = self._streams.pop(session_id, None)
        if stream is not None:
            stream.finish()
        if session_id in self._slot_holders:
            self._slot_holders.discard(session_id)
            if self._slots is not None:
                self._slots.release()

    async def _session_call(
        self, session_id: str, fn: Callable[..., T], *args: object, **kwargs: object
    ) -> T:
        """A :meth:`_call` that reaps the session when it turns out gone.

        A synchronous thread sharing the wrapped service may have closed the
        session behind the facade's back; the wrapped call then raises
        :class:`SessionServiceError`, and the facade must not keep the
        session's stream open or its slot held.
        """
        try:
            return await self._call(fn, *args, **kwargs)
        except SessionServiceError:
            self._reap(session_id)
            raise

    async def _acquire_slot(self) -> None:
        """Await a backpressure slot; raise instead of waiting on a closed service.

        :meth:`aclose` wakes one blocked waiter with a spare slot; each woken
        waiter finds the service closed, passes the slot on to the next
        waiter, and raises — so no create/resume hangs across a shutdown.
        """
        if self._closed:
            raise SessionServiceError("the async session service is closed")
        if self._slots is None:
            return
        await self._slots.acquire()
        if self._closed:
            self._slots.release()
            raise SessionServiceError("the async session service is closed")

    async def _create_session(
        self, fn: Callable[[], SessionDescriptor]
    ) -> SessionDescriptor:
        """The shared create/resume path: slot, spawn, admit — leak-free.

        Awaits a backpressure slot, runs the session-creating sync call via
        :meth:`_spawn`, and registers the result; the slot is released on
        any failure (including cancellation, where :meth:`_spawn` also
        discards the orphaned session).
        """
        await self._acquire_slot()
        try:
            descriptor = await self._spawn(fn)
        except BaseException:
            if self._slots is not None:
                self._slots.release()
            raise
        return self._admit(descriptor)

    async def _spawn(self, fn: Callable[[], SessionDescriptor]) -> SessionDescriptor:
        """Run a session-creating sync call, leak-free under cancellation.

        The executor thread cannot be interrupted: if the awaiting task is
        cancelled mid-create (a request timeout, say), the wrapped service
        still registers the session.  The call is therefore shielded, and on
        cancellation a done-callback closes whatever session the orphaned
        call produced.
        """
        if self._closed:
            raise SessionServiceError("the async session service is closed")
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._executor, fn)
        try:
            return await asyncio.shield(future)
        except asyncio.CancelledError:
            future.add_done_callback(self._discard_orphan)
            raise

    def _close_orphan(self, session_id: str) -> None:
        """Close an orphaned wrapped-service session off the event loop.

        Runs on the executor while it accepts work (a slow backing must not
        stall the loop); the synchronous fallback only covers a shutdown
        race where the executor is already gone.
        """

        def close_quietly() -> None:
            try:
                self.service.close(session_id)
            except SessionServiceError:
                pass

        try:
            self._executor.submit(close_quietly)
        except RuntimeError:  # executor already shut down (aclose raced us)
            close_quietly()

    def _discard_orphan(self, future: asyncio.Future[SessionDescriptor]) -> None:
        if future.cancelled() or future.exception() is not None:
            return
        self._close_orphan(future.result().session_id)

    def _admit(self, descriptor: SessionDescriptor) -> SessionDescriptor:
        """Register a freshly created/resumed session — unless the service
        closed while the creation was in flight on the executor, in which
        case the orphan is closed in the wrapped service, its slot freed,
        and :class:`SessionServiceError` raised (nothing would ever finish
        its event stream otherwise)."""
        if self._closed:
            self._close_orphan(descriptor.session_id)
            if self._slots is not None:
                self._slots.release()
            raise SessionServiceError("the async session service is closed")
        self._register(descriptor.session_id, holds_slot=self._slots is not None)
        return descriptor

    def _publish(self, session_id: str, event: Event) -> None:
        stream = self._streams.get(session_id)
        if stream is not None:
            stream.publish(event_to_wire(event))

    # ------------------------------------------------------------------ #
    # Table registry
    # ------------------------------------------------------------------ #
    async def register_table(self, table: CandidateTable) -> str:
        """Register a candidate table and return its fingerprint (idempotent).

        The row hashing runs on the executor.  Never raises for a valid
        table; :class:`SessionServiceError` if the service is closed.
        """
        return await self._call(self.service.register_table, table)

    async def tables(self) -> dict[str, str]:
        """The registered tables: ``fingerprint -> table name``."""
        return await self._call(self.service.tables)

    async def table(self, fingerprint: str) -> CandidateTable:
        """The registered table with the given fingerprint.

        Raises :class:`SessionServiceError` for an unknown fingerprint.
        """
        return await self._call(self.service.table, fingerprint)

    # ------------------------------------------------------------------ #
    # Session lifecycle
    # ------------------------------------------------------------------ #
    async def create(
        self,
        table: CandidateTable | str,
        mode: InteractionMode | str = InteractionMode.GUIDED,
        strategy: Strategy | str | None = None,
        k: int | None = None,
        strict: bool = True,
    ) -> SessionDescriptor:
        """Create a session; awaits a free slot when ``max_sessions`` is set.

        Arguments and validation are those of
        :meth:`~repro.service.service.SessionService.create`: raises
        :class:`ValueError` for options the mode does not accept,
        :class:`~repro.exceptions.StrategyError` for invalid option values or
        unknown strategy names, and :class:`SessionServiceError` for an
        unknown table fingerprint.  On any such error the awaited slot is
        released again.  Raises :class:`SessionServiceError` when the
        service is (or gets) closed — including while awaiting a slot.
        """
        return await self._create_session(
            functools.partial(
                self.service.create, table, mode=mode, strategy=strategy, k=k, strict=strict
            )
        )

    async def resume(
        self,
        payload: dict[str, object],
        table: CandidateTable | str | None = None,
    ) -> SessionDescriptor:
        """Restore a saved session document as a new live session.

        Semantics (and exceptions) of
        :meth:`~repro.service.service.SessionService.resume`; like
        :meth:`create`, awaits a free slot when ``max_sessions`` is set and
        releases it if the restore fails.
        """
        return await self._create_session(
            functools.partial(self.service.resume, payload, table=table)
        )

    async def describe(self, session_id: str) -> SessionDescriptor:
        """A snapshot of the session's kind and progress.

        Raises :class:`SessionServiceError` for an unknown (or already
        closed) session id.
        """
        return await self._session_call(session_id, self.service.describe, session_id)

    async def session_ids(self) -> list[str]:
        """Ids of all live sessions (including adopted ones)."""
        return await self._call(self.service.session_ids)

    async def save(self, session_id: str) -> dict[str, object]:
        """The session as a v3 persistence document (labels + session kind + strictness).

        Taken under the session lock, so the document is a consistent
        snapshot even while other tasks are answering.  Raises
        :class:`SessionServiceError` for an unknown session id.
        """
        lock = await self._lock_for(session_id)
        async with lock:
            return await self._session_call(session_id, self.service.save, session_id)

    async def close(self, session_id: str) -> SessionDescriptor:
        """Close a session: remove it, end its event streams, free its slot.

        Returns the final descriptor.  Raises :class:`SessionServiceError`
        when the session id is unknown — in particular on a double close.
        In-flight commands against the session finish first (the close queues
        on the session lock like any other command).  The facade's own state
        (lock, stream, backpressure slot) is released even when the wrapped
        service raises — e.g. when a synchronous thread sharing the service
        closed the session first — so streams end and slots never leak.
        """
        lock = await self._lock_for(session_id)
        async with lock:
            try:
                return await self._call(self.service.close, session_id)
            finally:
                self._reap(session_id)

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    async def next_question(self, session_id: str) -> Event:
        """The session's next protocol event (question, batch, or converged).

        The returned event is also published to the session's event stream.
        Raises :class:`SessionServiceError` for an unknown session id and
        :class:`~repro.exceptions.StrategyError` when the underlying strategy
        cannot choose (both leave the session unchanged).
        """
        lock = await self._lock_for(session_id)
        async with lock:
            event = await self._session_call(
                session_id, self.service.next_question, session_id
            )
            self._publish(session_id, event)
            return event

    async def answer(
        self, session_id: str, label: LabelLike, tuple_id: int | None = None
    ) -> LabelApplied:
        """Apply one label to the session and publish the resulting event.

        Semantics of :meth:`~repro.service.stepper.InferenceSession.submit`:
        raises :class:`SessionServiceError` for an unknown session,
        :class:`~repro.exceptions.StrategyError` when a batch/manual session
        is answered without ``tuple_id``, and
        :class:`~repro.exceptions.InconsistentLabelError` for an unparseable
        label or a contradicting one on a strict session.
        """
        lock = await self._lock_for(session_id)
        async with lock:
            applied = await self._session_call(
                session_id, self.service.answer, session_id, label, tuple_id=tuple_id
            )
            self._publish(session_id, applied)
            return applied

    async def answer_many(
        self, session_id: str, answers: AnswerSet
    ) -> list[LabelApplied]:
        """Apply a batch of ``tuple_id -> label`` answers atomically.

        The whole batch runs under the session lock, so its
        :class:`LabelApplied` events appear contiguously in the stream.
        Exceptions as for :meth:`answer`; tuples made uninformative by
        earlier answers of the same batch are skipped, per
        :meth:`~repro.service.stepper.InferenceSession.submit_many`.  When a
        mid-batch answer fails, the answers applied before it stay applied —
        their events are still published to the stream (the log stays
        gap-free) before the exception propagates.
        """
        lock = await self._lock_for(session_id)
        async with lock:
            try:
                events = await self._session_call(
                    session_id, self.service.answer_many, session_id, answers
                )
            except Exception as exc:
                for event in getattr(exc, "applied_events", ()):
                    self._publish(session_id, event)
                raise
            for event in events:
                self._publish(session_id, event)
            return events

    # ------------------------------------------------------------------ #
    # Event streams
    # ------------------------------------------------------------------ #
    async def events(
        self, session_id: str, replay: bool = True
    ) -> AsyncIterator[dict[str, object]]:
        """Stream the session's protocol events in JSON wire form.

        Yields every event the session has already produced (unless
        ``replay=False``), then live events as commands produce them, and
        ends when the session is closed.  Multiple consumers may stream the
        same session; each gets the full sequence.  A consumer that falls
        more than ``stream_buffer`` events behind is disconnected: its
        stream ends early (after the events it already buffered) rather
        than buffering without bound.  Raises :class:`SessionServiceError`
        if the session id is unknown when the stream starts, or the service
        is closed.
        """
        if self._closed:
            raise SessionServiceError("the async session service is closed")
        await self._adopt_if_foreign(session_id)
        stream = self._streams.get(session_id)
        if stream is None:
            raise SessionServiceError(f"unknown session id {session_id!r}")
        subscriber = stream.subscribe()
        # Snapshot synchronously, *after* subscribing: anything published
        # from here on lands in the queue, so the hand-off is gap-free.
        history = list(stream.history) if replay else []
        already_closed = stream.closed
        try:
            for wire in history:
                yield wire
            if already_closed:
                return
            queue = subscriber.queue
            while True:
                # A dropped (lagging) subscriber receives nothing further —
                # once its buffered backlog is drained, the stream ends.
                if subscriber.dropped and queue.empty():
                    return
                wire = await queue.get()
                if wire is None:
                    return
                yield wire
        finally:
            if subscriber in stream.subscribers:
                stream.subscribers.remove(subscriber)

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    async def aclose(self) -> None:
        """Shut the service down: end all event streams, release the executor.

        Live sessions are *not* closed in the wrapped synchronous service
        (it may be shared); their streams end.  Idempotent.  Commands after
        ``aclose`` raise :class:`SessionServiceError` — including
        :meth:`create`/:meth:`resume` calls currently awaiting a
        backpressure slot, which are woken and raise instead of hanging.
        """
        if self._closed:
            return
        self._closed = True
        for stream in self._streams.values():
            stream.finish()
        self._streams.clear()
        self._locks.clear()
        if self._slots is not None:
            # Start the wake-up cascade for any waiters blocked in
            # _acquire_slot (each re-releases before raising).
            self._slots.release()
        self._executor.shutdown(wait=False, cancel_futures=False)

    async def __aenter__(self) -> AsyncSessionService:
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"AsyncSessionService(sessions={len(self.service)}, "
            f"max_sessions={self.max_sessions})"
        )
