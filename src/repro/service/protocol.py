"""The sans-IO session protocol: typed events with a stable JSON wire form.

The interactive loop of the paper's Figure 2 is, stripped of I/O, a
conversation made of a handful of message kinds: the system proposes a tuple
(or a batch of tuples) to label, the user applies a label, and eventually the
labels identify a unique query.  This module gives those messages concrete,
typed shapes — the *events* emitted by
:class:`~repro.service.stepper.InferenceSession` — plus a stable JSON wire
form so any frontend (HTTP, websocket, crowd platform, test harness) can speak
the protocol without importing the inference core.

Events
------
:class:`QuestionAsked`
    The system proposes one tuple to label (guided mode).  Carries the row
    values so a frontend can render the membership question directly.
:class:`BatchQuestionsAsked`
    The system proposes a batch of tuples (top-k mode) or lists the tuples the
    user may label (manual modes).
:class:`LabelApplied`
    One label was recorded and propagated: how many tuples it grayed out and
    how many informative tuples remain.
:class:`Converged`
    The labels identify a unique query (up to instance-equivalence); carries
    the inferred query both human-readably and as attribute pairs.

Wire form
---------
``event_to_wire`` / ``event_from_wire`` convert events to and from plain JSON
objects tagged with a ``"type"`` field; ``encode_event`` / ``decode_event`` do
the same for JSON text.  The wire form is covered by round-trip tests and is
the contract the HTTP demo (``examples/serve_sessions.py``) exposes.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass

from ..core.examples import Label
from ..core.queries import JoinQuery
from ..exceptions import ReproError


class ProtocolError(ReproError):
    """A wire payload does not encode a valid protocol event."""


class InteractionMode(enum.Enum):
    """The four interaction types of the demonstration scenario (Figure 3)."""

    MANUAL = "manual"
    MANUAL_WITH_PRUNING = "manual-with-pruning"
    TOP_K = "top-k"
    GUIDED = "guided"


@dataclass(frozen=True)
class QuestionAsked:
    """The system proposes one tuple to label (the membership query).

    ``step`` is the 1-based step the answer will have; ``attributes`` and
    ``row`` let a frontend render the question without access to the table.
    """

    step: int
    tuple_id: int
    attributes: tuple[str, ...]
    row: tuple[object, ...]

    type = "question"


@dataclass(frozen=True)
class BatchQuestionsAsked:
    """The system proposes a batch of tuples to label, best first.

    Emitted by top-k sessions (``k`` is the requested batch size) and by
    manual sessions (``k`` is ``None``: the batch is simply the set of tuples
    the user may label).
    """

    step: int
    tuple_ids: tuple[int, ...]
    k: int | None

    type = "questions"


@dataclass(frozen=True)
class LabelApplied:
    """One label was recorded and propagated."""

    step: int
    tuple_id: int
    label: Label
    pruned: int
    informative_remaining: int

    type = "label_applied"


@dataclass(frozen=True)
class Converged:
    """The labels given so far identify a unique query.

    ``step`` is the number of labels applied in the session; ``atoms`` is the
    canonical inferred query as normalised attribute pairs and ``query`` its
    human-readable rendering.
    """

    step: int
    query: str
    atoms: tuple[tuple[str, str], ...]

    type = "converged"

    def as_join_query(self) -> JoinQuery:
        """The inferred query as a :class:`~repro.core.queries.JoinQuery`."""
        return JoinQuery(self.atoms)


Event = QuestionAsked | BatchQuestionsAsked | LabelApplied | Converged

_EVENT_CLASSES: dict[str, type] = {
    cls.type: cls
    for cls in (QuestionAsked, BatchQuestionsAsked, LabelApplied, Converged)
}


def query_atoms(query: JoinQuery) -> tuple[tuple[str, str], ...]:
    """A query's atoms as sorted ``(left, right)`` attribute pairs."""
    return tuple(atom.attributes for atom in query)


def converged_event(step: int, query: JoinQuery) -> Converged:
    """Build a :class:`Converged` event from an inferred query."""
    return Converged(step=step, query=query.describe(), atoms=query_atoms(query))


def event_to_wire(event: Event) -> dict[str, object]:
    """The JSON-serialisable wire form of an event (tagged with ``"type"``)."""
    payload = asdict(event)
    payload["type"] = event.type
    if isinstance(event, LabelApplied):
        payload["label"] = event.label.value
    return payload


def event_from_wire(payload: dict[str, object]) -> Event:
    """Rebuild a typed event from its wire form.

    Raises :class:`ProtocolError` on unknown tags or malformed fields.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("a protocol event must be a JSON object")
    tag = payload.get("type")
    cls = _EVENT_CLASSES.get(tag) if isinstance(tag, str) else None
    if cls is None:
        known = ", ".join(sorted(_EVENT_CLASSES))
        raise ProtocolError(f"unknown event type {tag!r}; known types: {known}")
    fields = {key: value for key, value in payload.items() if key != "type"}
    try:
        if cls is QuestionAsked:
            fields["attributes"] = tuple(fields["attributes"])
            fields["row"] = tuple(fields["row"])
        elif cls is BatchQuestionsAsked:
            fields["tuple_ids"] = tuple(int(i) for i in fields["tuple_ids"])
        elif cls is LabelApplied:
            fields["label"] = Label.from_value(fields["label"])
        elif cls is Converged:
            fields["atoms"] = tuple(
                (str(left), str(right)) for left, right in fields["atoms"]
            )
        return cls(**fields)
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"malformed {tag!r} event: {exc}") from exc


def encode_event(event: Event) -> str:
    """The event as one line of JSON text."""
    return json.dumps(event_to_wire(event), sort_keys=True)


def decode_event(text: str) -> Event:
    """Parse one line of JSON text back into a typed event."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"event is not valid JSON: {exc}") from exc
    return event_from_wire(payload)
