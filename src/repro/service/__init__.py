"""The sans-IO session protocol and the multi-tenant session service.

This package inverts the engine's control flow so any frontend can drive
inference:

* :mod:`~repro.service.protocol` — the typed event vocabulary
  (:class:`QuestionAsked`, :class:`LabelApplied`, :class:`Converged`, …) with
  a stable JSON wire form;
* :mod:`~repro.service.stepper` — :class:`InferenceSession`, the pure
  state machine the caller steps with ``next_question()`` / ``submit()``;
* :mod:`~repro.service.service` — :class:`SessionService`, a thread-safe
  facade managing many concurrent sessions by id over a fingerprint-keyed
  table registry, with save/resume backed by the v2 persistence format;
* :mod:`~repro.service.aio` — :class:`AsyncSessionService`, the
  asyncio-native facade: per-session ordering, bounded-executor offload of
  the CPU-bound steps, backpressure on create, and per-session event
  streams (``async for event in service.events(sid)``);
* :mod:`~repro.service.dispatch` — the crowd-batch dispatcher: simulated
  workers with latency/noise models, majority-vote aggregation, and
  :class:`CrowdDispatcher` multiplexing a session's question batches across
  a worker pool;
* :mod:`~repro.service.transport` — length-prefixed JSON framing over
  sockets (:class:`FramedConnection`, :class:`Listener`), the only module
  in the library that touches sockets;
* :mod:`~repro.service.worker` — the cluster worker loop and the
  ``python -m repro.service.worker`` entrypoint for remote machines;
* :mod:`~repro.service.cluster` — :class:`ClusterSessionService`, the
  supervised sharded tier: N workers (threads, local processes, or remote
  machines) each running a `SessionService`, consistent
  ``session_id -> worker`` routing, framed JSON commands over sockets,
  heartbeat health checks, and transparent respawn + session replay on
  worker death — the same facade as the single-process service (wrap it in
  :class:`AsyncSessionService` for streams and backpressure on real
  multi-core parallelism).

The historical blocking surfaces (``JoinInferenceEngine.run``, the
``sessions.modes`` classes, the console demo) are thin adapters over this
package.
"""

from .aio import AsyncSessionService
from .cluster import (
    ClusterServiceError,
    ClusterSessionService,
    ClusterWorkerError,
    WorkerUnavailableError,
)
from .dispatch import (
    CrowdDispatcher,
    CrowdRunReport,
    DispatchError,
    SimulatedWorker,
    WorkerProfile,
    majority_vote,
    simulated_crowd,
)
from .protocol import (
    BatchQuestionsAsked,
    Converged,
    Event,
    InteractionMode,
    LabelApplied,
    ProtocolError,
    QuestionAsked,
    decode_event,
    encode_event,
    event_from_wire,
    event_to_wire,
)
from .service import SessionDescriptor, SessionService, SessionServiceError
from .stepper import InferenceSession, validate_mode_options
from .transport import (
    ConnectionClosedError,
    FramedConnection,
    FrameTooLargeError,
    Listener,
    TransportError,
)

__all__ = [
    "AsyncSessionService",
    "BatchQuestionsAsked",
    "ClusterServiceError",
    "ClusterSessionService",
    "ClusterWorkerError",
    "ConnectionClosedError",
    "Converged",
    "CrowdDispatcher",
    "CrowdRunReport",
    "DispatchError",
    "Event",
    "FrameTooLargeError",
    "FramedConnection",
    "InferenceSession",
    "InteractionMode",
    "LabelApplied",
    "Listener",
    "ProtocolError",
    "QuestionAsked",
    "SessionDescriptor",
    "SessionService",
    "SessionServiceError",
    "SimulatedWorker",
    "TransportError",
    "WorkerProfile",
    "WorkerUnavailableError",
    "decode_event",
    "encode_event",
    "event_from_wire",
    "event_to_wire",
    "majority_vote",
    "simulated_crowd",
    "validate_mode_options",
]
