"""The sans-IO session protocol and the multi-tenant session service.

This package inverts the engine's control flow so any frontend can drive
inference:

* :mod:`~repro.service.protocol` — the typed event vocabulary
  (:class:`QuestionAsked`, :class:`LabelApplied`, :class:`Converged`, …) with
  a stable JSON wire form;
* :mod:`~repro.service.stepper` — :class:`InferenceSession`, the pure
  state machine the caller steps with ``next_question()`` / ``submit()``;
* :mod:`~repro.service.service` — :class:`SessionService`, a thread-safe
  facade managing many concurrent sessions by id over a fingerprint-keyed
  table registry, with save/resume backed by the v2 persistence format.

The historical blocking surfaces (``JoinInferenceEngine.run``, the
``sessions.modes`` classes, the console demo) are thin adapters over this
package.
"""

from .protocol import (
    BatchQuestionsAsked,
    Converged,
    Event,
    InteractionMode,
    LabelApplied,
    ProtocolError,
    QuestionAsked,
    decode_event,
    encode_event,
    event_from_wire,
    event_to_wire,
)
from .service import SessionDescriptor, SessionService, SessionServiceError
from .stepper import InferenceSession, validate_mode_options

__all__ = [
    "BatchQuestionsAsked",
    "Converged",
    "Event",
    "InferenceSession",
    "InteractionMode",
    "LabelApplied",
    "ProtocolError",
    "QuestionAsked",
    "SessionDescriptor",
    "SessionService",
    "SessionServiceError",
    "decode_event",
    "encode_event",
    "event_from_wire",
    "event_to_wire",
    "validate_mode_options",
]
