"""Interactive sessions: the four interaction types of the demo (Figure 3),
session statistics, and the "benefit of using a strategy" report (Figure 4).
"""

from .benefit import BenefitReport, compute_benefit
from .modes import (
    GuidedSession,
    ManualSession,
    TopKSession,
    create_session,
)
from .persistence import (
    SessionPersistenceError,
    document_strict,
    load_session,
    resume_guided_session,
    save_session,
    session_options,
    table_fingerprint,
)
from .statistics import SessionStatistics

__all__ = [
    "BenefitReport",
    "GuidedSession",
    "InteractionMode",
    "ManualSession",
    "SessionPersistenceError",
    "SessionStatistics",
    "TopKSession",
    "compute_benefit",
    "create_session",
    "document_strict",
    "load_session",
    "resume_guided_session",
    "save_session",
    "session_options",
    "table_fingerprint",
]


def __getattr__(name: str) -> object:
    # ``InteractionMode`` lives in the service layer above this one; the
    # lazy re-export keeps ``from repro.sessions import InteractionMode``
    # working without pulling the serving tier in at import time (RPR009).
    if name == "InteractionMode":
        from ..service.protocol import InteractionMode

        return InteractionMode
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
