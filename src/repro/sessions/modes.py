"""The four types of interaction of the demonstration scenario (Figure 3).

1. **Labeling all tuples** — the attendee labels whatever tuples she wants,
   in any order, with no help from the system
   (:class:`ManualSession` with ``gray_out=False``).
2. **Interactively graying out uninformative tuples** — same free labeling,
   but after each label the system grays out the tuples that became
   uninformative (:class:`ManualSession` with ``gray_out=True``).
3. **Proposing top-k informative tuples** — the system computes the ``k``
   most informative tuples and asks the attendee to label only them
   (:class:`TopKSession`).
4. **Proposing the most informative tuple** — the fully interactive inference
   process of Figure 2 (:class:`GuidedSession`).

All sessions share the same underlying :class:`~repro.core.state.InferenceState`
and therefore the same convergence criterion, statistics and benefit report.
"""

from __future__ import annotations

import enum
from typing import Optional, Union

from ..core.engine import Interaction
from ..core.examples import Label
from ..core.oracle import Oracle
from ..core.propagation import PropagationResult
from ..core.queries import JoinQuery
from ..core.state import InferenceState
from ..core.strategies.base import Strategy
from ..core.strategies.lookahead import EntropyStrategy
from ..core.strategies.registry import create_strategy
from ..exceptions import StrategyError
from ..relational.candidate import CandidateTable
from .benefit import BenefitReport, compute_benefit
from .statistics import SessionStatistics


class InteractionMode(enum.Enum):
    """The four interaction types of the demonstration scenario."""

    MANUAL = "manual"
    MANUAL_WITH_PRUNING = "manual-with-pruning"
    TOP_K = "top-k"
    GUIDED = "guided"


class _BaseSession:
    """State, statistics and benefit reporting shared by all session kinds."""

    mode: InteractionMode

    def __init__(
        self,
        table: CandidateTable,
        state: Optional[InferenceState] = None,
    ) -> None:
        self.table = table
        self.state = state if state is not None else InferenceState(table)
        self.interactions: list[Interaction] = []

    # -- labeling ------------------------------------------------------- #
    def _record(self, tuple_id: int, label: Label, propagation: PropagationResult) -> None:
        self.interactions.append(
            Interaction(
                step=len(self.interactions) + 1,
                tuple_id=tuple_id,
                label=label,
                pruned=propagation.pruned_count,
                informative_remaining=propagation.informative_after,
                elapsed_seconds=0.0,
            )
        )

    def label(self, tuple_id: int, label: Union[Label, str, bool]) -> PropagationResult:
        """Record one user label and propagate it."""
        parsed = Label.from_value(label)
        propagation = self.state.add_label(tuple_id, parsed)
        self._record(tuple_id, parsed, propagation)
        return propagation

    # -- progress ------------------------------------------------------- #
    @property
    def num_interactions(self) -> int:
        """Number of labels the user has given in this session."""
        return len(self.interactions)

    def is_converged(self) -> bool:
        """Whether the labels given so far identify a unique query."""
        return self.state.is_converged()

    def inferred_query(self) -> JoinQuery:
        """The canonical query consistent with the labels given so far."""
        return self.state.inferred_query()

    def statistics(self) -> SessionStatistics:
        """The progress panel of the demo interface."""
        return SessionStatistics.from_state(self.state)

    def benefit_report(
        self,
        strategy: Union[Strategy, str] = "lookahead-entropy",
        goal: Optional[JoinQuery] = None,
    ) -> BenefitReport:
        """The Figure 4 comparison: this session vs a strategy-guided one."""
        return compute_benefit(
            self.state, self.num_interactions, strategy=strategy, goal=goal
        )


class ManualSession(_BaseSession):
    """Interaction types 1 and 2: the attendee labels tuples in any order.

    With ``gray_out=False`` (type 1) the system gives no feedback at all —
    :meth:`visible_grayed_out` stays empty even though the state internally
    knows which tuples became uninformative.  With ``gray_out=True`` (type 2)
    every label's propagation is surfaced so the interface can gray tuples out.
    """

    def __init__(
        self,
        table: CandidateTable,
        gray_out: bool = False,
        state: Optional[InferenceState] = None,
    ) -> None:
        super().__init__(table, state)
        self.gray_out = gray_out
        self.mode = (
            InteractionMode.MANUAL_WITH_PRUNING if gray_out else InteractionMode.MANUAL
        )

    def labelable_ids(self) -> list[int]:
        """The tuples the attendee may label next.

        Type 1 lets her label any unlabeled tuple; type 2 hides the grayed-out
        ones and only offers the informative tuples.
        """
        if self.gray_out:
            return self.state.informative_ids()
        labeled = self.state.labeled_ids()
        return [tuple_id for tuple_id in self.table.tuple_ids if tuple_id not in labeled]

    def visible_grayed_out(self) -> list[int]:
        """The tuples the interface currently shows as grayed out."""
        return self.state.certain_ids() if self.gray_out else []

    def run(self, oracle: Oracle, order: Optional[list[int]] = None) -> JoinQuery:
        """Simulate an attendee labeling tuples in the given (or table) order.

        The attendee stops as soon as the labels identify a unique query —
        which, without graying out, she can only notice by exhausting the
        tuples she considers worth labeling.
        """
        sequence = order if order is not None else list(self.table.tuple_ids)
        for tuple_id in sequence:
            if self.is_converged():
                break
            if tuple_id in self.state.labeled_ids():
                continue
            if self.gray_out and self.state.status(tuple_id).is_certain:
                continue
            self.label(tuple_id, oracle.label(self.table, tuple_id))
        return self.inferred_query()


class TopKSession(_BaseSession):
    """Interaction type 3: the system proposes the top-k informative tuples.

    Tuples are ranked with a lookahead score (how much either answer would
    resolve); the attendee labels the proposed batch, the system re-ranks, and
    so on until convergence.
    """

    mode = InteractionMode.TOP_K

    def __init__(
        self,
        table: CandidateTable,
        k: int = 5,
        state: Optional[InferenceState] = None,
    ) -> None:
        if k < 1:
            raise StrategyError("k must be at least 1")
        super().__init__(table, state)
        self.k = k
        self._scorer = EntropyStrategy()

    def propose(self, k: Optional[int] = None) -> list[int]:
        """The current top-k informative tuples, best first."""
        batch_size = k if k is not None else self.k
        candidates = self.state.informative_ids()
        counts = self.state.prune_counts_all(candidates)
        scored = sorted(
            candidates,
            key=lambda tid: (self._scorer.score(*counts[tid]), -tid),
            reverse=True,
        )
        return scored[:batch_size]

    def run(self, oracle: Oracle, max_rounds: Optional[int] = None) -> JoinQuery:
        """Label proposed batches until convergence (or ``max_rounds``)."""
        rounds = 0
        while not self.is_converged():
            if max_rounds is not None and rounds >= max_rounds:
                break
            for tuple_id in self.propose():
                # Earlier labels in the same batch may have made this tuple
                # uninformative; the attendee skips it in that case.
                if self.state.status(tuple_id).is_uninformative:
                    continue
                self.label(tuple_id, oracle.label(self.table, tuple_id))
            rounds += 1
        return self.inferred_query()


class GuidedSession(_BaseSession):
    """Interaction type 4: the core interactive scenario of Figure 2.

    The system repeatedly proposes the most informative tuple according to the
    chosen strategy; the attendee only answers Yes/No.  The session can be
    driven step by step (:meth:`next_tuple` / :meth:`answer`) — the
    programmatic equivalent of the GUI — or run to convergence against an
    oracle (:meth:`run`).
    """

    mode = InteractionMode.GUIDED

    def __init__(
        self,
        table: CandidateTable,
        strategy: Union[Strategy, str, None] = None,
        state: Optional[InferenceState] = None,
    ) -> None:
        super().__init__(table, state)
        if strategy is None:
            self.strategy: Strategy = EntropyStrategy()
        elif isinstance(strategy, str):
            self.strategy = create_strategy(strategy)
        else:
            self.strategy = strategy
        self._pending: Optional[int] = None

    def next_tuple(self) -> int:
        """The tuple the system asks about next (stable until answered)."""
        if self._pending is None:
            self._pending = self.strategy.choose(self.state)
        return self._pending

    def answer(self, label: Union[Label, str, bool]) -> PropagationResult:
        """Answer the pending membership query."""
        tuple_id = self.next_tuple()
        propagation = self.label(tuple_id, label)
        self._pending = None
        return propagation

    def run(self, oracle: Oracle, max_interactions: Optional[int] = None) -> JoinQuery:
        """Run the guided loop to convergence (or ``max_interactions``)."""
        while not self.is_converged():
            if max_interactions is not None and self.num_interactions >= max_interactions:
                break
            tuple_id = self.next_tuple()
            self.answer(oracle.label(self.table, tuple_id))
        return self.inferred_query()


def create_session(
    mode: Union[InteractionMode, str],
    table: CandidateTable,
    **kwargs: object,
) -> _BaseSession:
    """Build a session of the requested interaction type."""
    parsed = InteractionMode(mode) if not isinstance(mode, InteractionMode) else mode
    if parsed is InteractionMode.MANUAL:
        return ManualSession(table, gray_out=False, **kwargs)  # type: ignore[arg-type]
    if parsed is InteractionMode.MANUAL_WITH_PRUNING:
        return ManualSession(table, gray_out=True, **kwargs)  # type: ignore[arg-type]
    if parsed is InteractionMode.TOP_K:
        return TopKSession(table, **kwargs)  # type: ignore[arg-type]
    return GuidedSession(table, **kwargs)  # type: ignore[arg-type]
