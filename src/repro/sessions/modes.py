"""The four types of interaction of the demonstration scenario (Figure 3).

1. **Labeling all tuples** — the attendee labels whatever tuples she wants,
   in any order, with no help from the system
   (:class:`ManualSession` with ``gray_out=False``).
2. **Interactively graying out uninformative tuples** — same free labeling,
   but after each label the system grays out the tuples that became
   uninformative (:class:`ManualSession` with ``gray_out=True``).
3. **Proposing top-k informative tuples** — the system computes the ``k``
   most informative tuples and asks the attendee to label only them
   (:class:`TopKSession`).
4. **Proposing the most informative tuple** — the fully interactive inference
   process of Figure 2 (:class:`GuidedSession`).

Since the sans-IO redesign all four classes are thin adapters over one
:class:`~repro.service.stepper.InferenceSession` (exposed as ``stepper``):
they translate the historical method surface (``label``, ``propose``,
``next_tuple`` / ``answer``, ``run``) into stepper commands, so every
frontend — these classes, the engine, the CLI, the HTTP service — drives the
identical state machine.  The underlying
:class:`~repro.core.state.InferenceState` and the convergence criterion,
statistics and benefit report are therefore shared as before.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.engine import Interaction
from ..core.examples import Label
from ..core.oracle import Oracle
from ..core.propagation import PropagationResult
from ..core.queries import JoinQuery
from ..core.state import InferenceState
from ..core.strategies.base import Strategy
from ..exceptions import StrategyError
from ..relational.candidate import CandidateTable
from .benefit import BenefitReport, compute_benefit
from .statistics import SessionStatistics

if TYPE_CHECKING:
    from ..service.protocol import InteractionMode
    from ..service.stepper import InferenceSession

__all__ = [
    "GuidedSession",
    "InteractionMode",
    "ManualSession",
    "TopKSession",
    "create_session",
]

# The sessions layer sits *below* the service layer, so the stepper and the
# protocol's InteractionMode are reached through deferred imports at the
# call sites (the sanctioned upward adapter seam, RPR009) rather than at
# module level.  ``InteractionMode`` stays importable from here for
# compatibility via the module-level ``__getattr__`` below.


def __getattr__(name: str) -> object:
    if name == "InteractionMode":
        from ..service.protocol import InteractionMode

        return InteractionMode
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class _BaseSession:
    """Adapter plumbing shared by all session kinds.

    Wraps an :class:`~repro.service.stepper.InferenceSession` and re-exposes
    its state, interaction log, statistics and benefit reporting under the
    historical attribute names.
    """

    def __init__(
        self,
        table: CandidateTable,
        mode: InteractionMode,
        state: InferenceState | None = None,
        strategy: Strategy | str | None = None,
        k: int | None = None,
    ) -> None:
        from ..service.stepper import InferenceSession

        self.table = table
        self.mode = mode
        self.stepper = InferenceSession(
            table, mode=mode, strategy=strategy, k=k, state=state
        )
        self.state = self.stepper.state

    # -- labeling ------------------------------------------------------- #
    def label(self, tuple_id: int, label: Label | str | bool) -> PropagationResult:
        """Record one user label and propagate it."""
        self.stepper.submit(label, tuple_id=tuple_id)
        return self.stepper.last_propagation()

    # -- progress ------------------------------------------------------- #
    @property
    def interactions(self) -> list[Interaction]:
        """The labels given so far (the stepper's interaction log)."""
        return self.stepper.interactions

    @property
    def num_interactions(self) -> int:
        """Number of labels the user has given in this session."""
        return self.stepper.num_interactions

    def is_converged(self) -> bool:
        """Whether the labels given so far identify a unique query."""
        return self.stepper.is_converged()

    def inferred_query(self) -> JoinQuery:
        """The canonical query consistent with the labels given so far."""
        return self.stepper.inferred_query()

    def statistics(self) -> SessionStatistics:
        """The progress panel of the demo interface."""
        return SessionStatistics.from_state(self.state)

    def benefit_report(
        self,
        strategy: Strategy | str = "lookahead-entropy",
        goal: JoinQuery | None = None,
    ) -> BenefitReport:
        """The Figure 4 comparison: this session vs a strategy-guided one."""
        return compute_benefit(
            self.state, self.num_interactions, strategy=strategy, goal=goal
        )


class ManualSession(_BaseSession):
    """Interaction types 1 and 2: the attendee labels tuples in any order.

    With ``gray_out=False`` (type 1) the system gives no feedback at all —
    :meth:`visible_grayed_out` stays empty even though the state internally
    knows which tuples became uninformative.  With ``gray_out=True`` (type 2)
    every label's propagation is surfaced so the interface can gray tuples out.
    """

    def __init__(
        self,
        table: CandidateTable,
        gray_out: bool = False,
        state: InferenceState | None = None,
    ) -> None:
        from ..service.protocol import InteractionMode

        mode = (
            InteractionMode.MANUAL_WITH_PRUNING if gray_out else InteractionMode.MANUAL
        )
        super().__init__(table, mode, state=state)
        self.gray_out = gray_out

    def labelable_ids(self) -> list[int]:
        """The tuples the attendee may label next.

        Type 1 lets her label any unlabeled tuple; type 2 hides the grayed-out
        ones and only offers the informative tuples.
        """
        return self.stepper.labelable_ids()

    def visible_grayed_out(self) -> list[int]:
        """The tuples the interface currently shows as grayed out."""
        return self.state.certain_ids() if self.gray_out else []

    def run(self, oracle: Oracle, order: list[int] | None = None) -> JoinQuery:
        """Simulate an attendee labeling tuples in the given (or table) order.

        The attendee stops as soon as the labels identify a unique query —
        which, without graying out, she can only notice by exhausting the
        tuples she considers worth labeling.
        """
        sequence = order if order is not None else list(self.table.tuple_ids)
        for tuple_id in sequence:
            if self.is_converged():
                break
            if tuple_id in self.state.labeled_ids():
                continue
            if self.gray_out and self.state.status(tuple_id).is_certain:
                continue
            self.label(tuple_id, oracle.label(self.table, tuple_id))
        return self.inferred_query()


class TopKSession(_BaseSession):
    """Interaction type 3: the system proposes the top-k informative tuples.

    Tuples are ranked with a lookahead score (how much either answer would
    resolve); the attendee labels the proposed batch, the system re-ranks, and
    so on until convergence.
    """

    def __init__(
        self,
        table: CandidateTable,
        k: int | None = None,
        state: InferenceState | None = None,
    ) -> None:
        from ..service.protocol import InteractionMode
        from ..service.stepper import DEFAULT_K

        if k is None:
            k = DEFAULT_K
        super().__init__(table, InteractionMode.TOP_K, state=state, k=k)
        self.k = k

    def propose(self, k: int | None = None) -> list[int]:
        """The current top-k informative tuples, best first."""
        return self.stepper.propose_batch(k)

    def run(self, oracle: Oracle, max_rounds: int | None = None) -> JoinQuery:
        """Label proposed batches until convergence (or ``max_rounds``)."""
        rounds = 0
        while not self.is_converged():
            if max_rounds is not None and rounds >= max_rounds:
                break
            # Earlier labels in the same batch may make later tuples
            # uninformative; submit_many skips them, as the attendee would.
            self.stepper.submit_many(
                (tuple_id, oracle.label(self.table, tuple_id))
                for tuple_id in self.propose()
                if not self.state.status(tuple_id).is_uninformative
            )
            rounds += 1
        return self.inferred_query()


class GuidedSession(_BaseSession):
    """Interaction type 4: the core interactive scenario of Figure 2.

    The system repeatedly proposes the most informative tuple according to the
    chosen strategy; the attendee only answers Yes/No.  The session can be
    driven step by step (:meth:`next_tuple` / :meth:`answer`) — the
    programmatic equivalent of the GUI — or run to convergence against an
    oracle (:meth:`run`).
    """

    def __init__(
        self,
        table: CandidateTable,
        strategy: Strategy | str | None = None,
        state: InferenceState | None = None,
    ) -> None:
        from ..service.protocol import InteractionMode

        super().__init__(table, InteractionMode.GUIDED, state=state, strategy=strategy)
        self.strategy = self.stepper.strategy

    def next_tuple(self) -> int:
        """The tuple the system asks about next (stable until answered)."""
        from ..service.protocol import Converged

        event = self.stepper.next_question()
        if isinstance(event, Converged):
            raise StrategyError("no informative tuple remains; the session has converged")
        return event.tuple_id

    def answer(self, label: Label | str | bool) -> PropagationResult:
        """Answer the pending membership query."""
        self.stepper.submit(label)
        return self.stepper.last_propagation()

    def run(self, oracle: Oracle, max_interactions: int | None = None) -> JoinQuery:
        """Run the guided loop to convergence (or ``max_interactions``)."""
        while not self.is_converged():
            if max_interactions is not None and self.num_interactions >= max_interactions:
                break
            tuple_id = self.next_tuple()
            self.answer(oracle.label(self.table, tuple_id))
        return self.inferred_query()


def create_session(
    mode: InteractionMode | str,
    table: CandidateTable,
    **kwargs: object,
) -> _BaseSession:
    """Build a session of the requested interaction type.

    Keyword arguments are validated against the mode *before* construction:
    an option the mode does not understand — e.g. passing ``k`` to a guided
    session, or ``strategy`` to a manual one — raises :class:`ValueError`
    naming the mode, and a recognised-but-invalid value (e.g. ``k=0``) raises
    :class:`~repro.exceptions.StrategyError`, instead of failing late or
    being silently swallowed.  The per-mode option table is the stepper's
    (:data:`~repro.service.stepper.MODE_OPTIONS`), plus ``state`` which every
    mode accepts; options set to ``None`` mean "use the default".
    """
    from ..service.protocol import InteractionMode
    from ..service.stepper import DEFAULT_K, MODE_OPTIONS, parse_mode, validate_mode_options

    parsed = parse_mode(mode)
    allowed = MODE_OPTIONS[parsed] | {"state"}
    unknown = sorted(set(kwargs) - allowed)
    if unknown:
        extras = ", ".join(repr(name) for name in unknown)
        accepted = ", ".join(sorted(allowed))
        raise ValueError(
            f"session mode {parsed.value!r} does not accept {extras} "
            f"(accepted keyword arguments: {accepted})"
        )
    validate_mode_options(
        parsed, {name: kwargs.get(name) for name in MODE_OPTIONS[parsed]}
    )
    state = kwargs.get("state")
    if state is not None and not isinstance(state, InferenceState):
        raise ValueError(
            f"session mode {parsed.value!r}: 'state' must be an InferenceState, "
            f"got {type(state).__name__}"
        )
    if parsed is InteractionMode.MANUAL:
        return ManualSession(table, gray_out=False, state=state)
    if parsed is InteractionMode.MANUAL_WITH_PRUNING:
        return ManualSession(table, gray_out=True, state=state)
    if parsed is InteractionMode.TOP_K:
        k = kwargs.get("k")
        return TopKSession(table, k=DEFAULT_K if k is None else k, state=state)
    strategy = kwargs.get("strategy")
    if strategy is not None and not isinstance(strategy, (Strategy, str)):
        raise ValueError(
            "session mode 'guided': 'strategy' must be a Strategy instance or a "
            f"registry name, got {type(strategy).__name__}"
        )
    return GuidedSession(table, strategy=strategy, state=state)
