"""The "benefit of using a strategy" report (Figure 4 of the paper).

After a free-labeling session (interaction types 1–3), the demo shows the
attendee "how many interactions she would have done if she had used a strategy
of proposing informative tuples to her".  :func:`compute_benefit` produces
exactly that comparison: it takes the query inferred from the user's labels,
replays a fully guided inference session against it with the requested
strategy, and reports both interaction counts and the saving.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.engine import JoinInferenceEngine
from ..core.oracle import GoalQueryOracle
from ..core.queries import JoinQuery
from ..core.state import InferenceState
from ..core.strategies.base import Strategy


@dataclass(frozen=True)
class BenefitReport:
    """How much effort a strategy would have saved over the user's session."""

    user_interactions: int
    strategy_interactions: int
    strategy_name: str
    inferred_query: JoinQuery

    @property
    def saved_interactions(self) -> int:
        """Interactions the strategy would have spared the user (never negative)."""
        return max(0, self.user_interactions - self.strategy_interactions)

    @property
    def saved_pct(self) -> float:
        """Relative saving, as a percentage of the user's interactions."""
        if self.user_interactions == 0:
            return 0.0
        return 100.0 * self.saved_interactions / self.user_interactions

    @property
    def speedup(self) -> float:
        """``user_interactions / strategy_interactions`` (∞-free: 0 when undefined)."""
        if self.strategy_interactions == 0:
            return 0.0
        return self.user_interactions / self.strategy_interactions

    def as_dict(self) -> dict[str, object]:
        """Plain-dictionary form for logging and rendering."""
        return {
            "user_interactions": self.user_interactions,
            "strategy_interactions": self.strategy_interactions,
            "strategy": self.strategy_name,
            "saved_interactions": self.saved_interactions,
            "saved_pct": round(self.saved_pct, 2),
            "inferred_query": self.inferred_query.describe(),
        }

    def summary(self) -> str:
        """One-line rendering in the spirit of Figure 4."""
        return (
            f"you labeled {self.user_interactions} tuple(s); the {self.strategy_name} strategy "
            f"would have needed {self.strategy_interactions} "
            f"(saving {self.saved_interactions}, {self.saved_pct:.0f}%)"
        )


def compute_benefit(
    state: InferenceState,
    user_interactions: int,
    strategy: Strategy | str = "lookahead-entropy",
    goal: JoinQuery | None = None,
) -> BenefitReport:
    """Compare a user's session against a strategy-guided one on the same goal.

    Parameters
    ----------
    state:
        The state at the end of the user's session; its inferred (canonical)
        query is used as the goal unless ``goal`` is given explicitly.
    user_interactions:
        How many labels the user actually provided.
    strategy:
        The strategy to replay the inference with.
    """
    target = goal if goal is not None else state.inferred_query()
    engine = JoinInferenceEngine(state.table, strategy=strategy, universe=state.universe)
    replay = engine.run(GoalQueryOracle(target))
    return BenefitReport(
        user_interactions=user_interactions,
        strategy_interactions=replay.num_interactions,
        strategy_name=engine.strategy.name,
        inferred_query=target,
    )
