"""Session progress statistics.

The demo "always show[s] in our interface basic statistics about the progress
of learning: the total number (and the relative percentage) of tuples that
have been explicitly labeled by the user or deemed as uninformative, etc.".
:class:`SessionStatistics` is that panel in data form.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.state import InferenceState


@dataclass(frozen=True)
class SessionStatistics:
    """Progress of one labeling session over a candidate table."""

    total_tuples: int
    labeled_positive: int
    labeled_negative: int
    grayed_out: int
    informative_remaining: int

    @property
    def labeled(self) -> int:
        """Tuples explicitly labeled by the user."""
        return self.labeled_positive + self.labeled_negative

    @property
    def labeled_pct(self) -> float:
        """Percentage of tuples explicitly labeled."""
        return 100.0 * self.labeled / self.total_tuples if self.total_tuples else 0.0

    @property
    def grayed_out_pct(self) -> float:
        """Percentage of tuples deemed uninformative (grayed out)."""
        return 100.0 * self.grayed_out / self.total_tuples if self.total_tuples else 0.0

    @property
    def informative_pct(self) -> float:
        """Percentage of tuples still informative."""
        return (
            100.0 * self.informative_remaining / self.total_tuples if self.total_tuples else 0.0
        )

    @property
    def resolved(self) -> int:
        """Tuples whose label is known one way or another (labeled or implied)."""
        return self.labeled + self.grayed_out

    @property
    def is_complete(self) -> bool:
        """Whether no informative tuple remains."""
        return self.informative_remaining == 0

    @classmethod
    def from_state(cls, state: InferenceState) -> SessionStatistics:
        """Snapshot the statistics of an inference state.

        Type-level: the counts come from the example set and the state's
        per-type status cache, so the snapshot never sweeps the table.
        """
        total_tuples = len(state.table)
        labeled_positive = len(state.examples.positives)
        labeled_negative = len(state.examples.negatives)
        informative = state.informative_count()
        grayed_out = total_tuples - labeled_positive - labeled_negative - informative
        return cls(
            total_tuples=total_tuples,
            labeled_positive=labeled_positive,
            labeled_negative=labeled_negative,
            grayed_out=grayed_out,
            informative_remaining=informative,
        )

    def as_dict(self) -> dict[str, float]:
        """Plain-dictionary form (counts and percentages), for logging/rendering."""
        return {
            "total_tuples": self.total_tuples,
            "labeled": self.labeled,
            "labeled_positive": self.labeled_positive,
            "labeled_negative": self.labeled_negative,
            "labeled_pct": round(self.labeled_pct, 2),
            "grayed_out": self.grayed_out,
            "grayed_out_pct": round(self.grayed_out_pct, 2),
            "informative_remaining": self.informative_remaining,
            "informative_pct": round(self.informative_pct, 2),
        }

    def summary(self) -> str:
        """One-line human-readable progress summary."""
        return (
            f"{self.labeled}/{self.total_tuples} labeled ({self.labeled_pct:.0f}%), "
            f"{self.grayed_out} grayed out ({self.grayed_out_pct:.0f}%), "
            f"{self.informative_remaining} informative remaining"
        )
