"""Saving and resuming labeling sessions.

A labeling session — especially a crowdsourced one — rarely happens in one
sitting.  This module serialises the labels collected so far (plus enough
metadata to detect that they are being replayed against the same candidate
table) to a JSON document, and restores an
:class:`~repro.core.state.InferenceState` from it, so any session kind can be
resumed exactly where it stopped.

Format history
--------------
* **v1** — labels + table fingerprint + (write-only) convergence summary.
* **v2** — adds an optional ``"session"`` object recording the interaction
  ``mode``, the ``strategy`` name and ``k``, so a multi-session service can
  restore a saved session *as the right kind of session*, not just as raw
  labels.  v1 documents are still read.
* **v3** — adds a top-level ``"strict"`` flag recording whether the session
  rejected contradicting labels.  Before v3 a lenient (``strict=False``)
  session silently resumed as a *strict* one: a contradicting label the
  original session tolerated raised
  :class:`~repro.exceptions.InconsistentLabelError` after resume (and a
  lenient session whose stored labels already contradict each other could
  not be replayed at all).  v1/v2 documents carry no flag and keep the
  historical ``strict=True`` reading.

On load the stored ``canonical_query`` / ``converged`` fields are verified
against the replayed labels (they used to be written but never read); a
mismatch — a corrupted or hand-edited document whose labels no longer
reproduce the recorded outcome — raises :class:`SessionPersistenceError`.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.examples import Label
from ..core.state import InferenceState
from ..exceptions import ReproError
from ..relational.candidate import CandidateTable

PathLike = str | Path

#: Format identifier written into every saved session.
FORMAT = "jim-session"
FORMAT_VERSION = 3
#: Versions :func:`deserialize_state` accepts.
SUPPORTED_VERSIONS = (1, 2, 3)


class SessionPersistenceError(ReproError):
    """A saved session cannot be read or does not match the candidate table."""


def table_fingerprint(table: CandidateTable) -> str:
    """A stable fingerprint of a candidate table (attributes + rows).

    Used to refuse resuming a session against a different table, where the
    stored tuple ids would silently mean different tuples.  The same
    fingerprint keys the table registry of
    :class:`~repro.service.service.SessionService`.

    Memoised on the table instance (tables are immutable), so repeated
    ``register_table``/``create``/``save`` calls hash the rows only once —
    and factorized cross products are hashed streaming, without
    materialising their flat rows.
    """
    return table.fingerprint()


def serialize_state(
    state: InferenceState,
    mode: str | None = None,
    strategy: str | None = None,
    k: int | None = None,
) -> dict[str, object]:
    """The JSON-serialisable form of a session's labels and context.

    ``mode`` / ``strategy`` / ``k`` record how the session was being driven
    (v2); when all are omitted the document carries labels only, which any
    session kind can adopt.  The state's own strictness is always recorded
    (v3), so a lenient session resumes lenient.
    """
    payload: dict[str, object] = {
        "format": FORMAT,
        "version": FORMAT_VERSION,
        "strict": state.strict,
        "table_name": state.table.name,
        "table_fingerprint": table_fingerprint(state.table),
        "num_candidates": len(state.table),
        "atoms": [list(atom.attributes) for atom in state.universe.atoms],
        "labels": {
            str(example.tuple_id): example.label.value for example in state.examples
        },
        "converged": state.is_converged(),
        "canonical_query": [list(atom.attributes) for atom in state.inferred_query()],
    }
    if mode is not None or strategy is not None or k is not None:
        payload["session"] = {"mode": mode, "strategy": strategy, "k": k}
    return payload


def save_session(
    state: InferenceState,
    path: PathLike,
    mode: str | None = None,
    strategy: str | None = None,
    k: int | None = None,
) -> None:
    """Write a session's labels (and optional session metadata) to a JSON file."""
    payload = serialize_state(state, mode=mode, strategy=strategy, k=k)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")


def document_strict(payload: dict[str, object]) -> bool:
    """The strictness a saved document records (v3).

    v1/v2 documents carry no flag and read as ``True`` — the historical
    behaviour.  Raises :class:`SessionPersistenceError` for a non-boolean
    value.
    """
    strict = payload.get("strict", True)
    if not isinstance(strict, bool):
        raise SessionPersistenceError(
            f"malformed session: 'strict' must be a boolean, got {strict!r}"
        )
    return strict


def session_options(payload: dict[str, object]) -> dict[str, object]:
    """The session metadata of a saved document: ``mode``/``strategy``/``k``/``strict``.

    v1 documents (and v2 documents saved without metadata) default to a
    guided session with the default strategy, the historical resume
    behaviour; ``strict`` comes from the top-level v3 flag (see
    :func:`document_strict`).
    """
    strict = document_strict(payload)
    raw = payload.get("session")
    if raw is None:
        return {"mode": "guided", "strategy": None, "k": None, "strict": strict}
    if not isinstance(raw, dict):
        raise SessionPersistenceError("malformed session: 'session' must be an object")
    mode = raw.get("mode") or "guided"
    strategy = raw.get("strategy")
    k = raw.get("k")
    if not isinstance(mode, str):
        raise SessionPersistenceError(
            f"malformed session: 'session.mode' must be a string, got {mode!r}"
        )
    if strategy is not None and not isinstance(strategy, str):
        raise SessionPersistenceError(
            f"malformed session: 'session.strategy' must be a strategy name, got {strategy!r}"
        )
    if k is not None and (not isinstance(k, int) or isinstance(k, bool)):
        raise SessionPersistenceError(
            f"malformed session: 'session.k' must be an integer, got {k!r}"
        )
    return {"mode": mode, "strategy": strategy, "k": k, "strict": strict}


def _verify_outcome(payload: dict[str, object], state: InferenceState) -> None:
    """Check the replayed labels reproduce the stored convergence summary."""
    stored_converged = payload.get("converged")
    if isinstance(stored_converged, bool) and stored_converged != state.is_converged():
        raise SessionPersistenceError(
            "corrupt session: the replayed labels "
            f"{'do' if state.is_converged() else 'do not'} converge but the document "
            f"records converged={stored_converged}"
        )
    stored_query = payload.get("canonical_query")
    if stored_query is not None:
        if not isinstance(stored_query, list):
            raise SessionPersistenceError(
                "malformed session: 'canonical_query' must be a list of attribute pairs"
            )
        try:
            stored_atoms = {frozenset(pair) for pair in stored_query}
        except TypeError as exc:
            raise SessionPersistenceError(
                "malformed session: 'canonical_query' must be a list of attribute pairs"
            ) from exc
        replayed_atoms = {frozenset(atom.attributes) for atom in state.inferred_query()}
        if stored_atoms != replayed_atoms:
            raise SessionPersistenceError(
                "corrupt session: replaying the stored labels yields canonical query "
                f"{sorted(sorted(a) for a in replayed_atoms)} but the document records "
                f"{sorted(sorted(a) for a in stored_atoms)}"
            )


def deserialize_state(
    payload: dict[str, object],
    table: CandidateTable,
    strict: bool | None = None,
    verify_fingerprint: bool = True,
    verify_integrity: bool = True,
) -> InferenceState:
    """Rebuild an :class:`InferenceState` from a serialised session.

    ``strict`` defaults to the strictness the document records (v3; ``True``
    for v1/v2 documents), so a lenient session resumes lenient — its stored
    labels replay without tripping the strict-mode contradiction check, and
    the restored state keeps tolerating contradictions exactly as the
    original did.  Pass an explicit boolean to override the recorded value.

    ``verify_integrity`` replays the labels and checks they reproduce the
    stored ``canonical_query`` / ``converged`` summary, catching corrupted or
    hand-edited documents; it only applies when those fields are present and
    the fingerprint matches (a deliberately cross-table load with
    ``verify_fingerprint=False`` legitimately yields a different query).
    """
    if payload.get("format") != FORMAT:
        raise SessionPersistenceError("not a JIM session document")
    if payload.get("version") not in SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
        raise SessionPersistenceError(
            f"unsupported session version {payload.get('version')!r} (expected one of {supported})"
        )
    # Hashing every row is not free on large tables; skip it entirely when
    # neither check needs the answer.
    fingerprint_matches = (
        payload.get("table_fingerprint") == table_fingerprint(table)
        if (verify_fingerprint or verify_integrity)
        else False
    )
    if verify_fingerprint and not fingerprint_matches:
        raise SessionPersistenceError(
            "the saved session was recorded against a different candidate table"
        )
    if strict is None:
        strict = document_strict(payload)
    state = InferenceState(table, strict=strict)
    labels = payload.get("labels", {})
    if not isinstance(labels, dict):
        raise SessionPersistenceError("malformed session: 'labels' must be an object")
    for tuple_id_text, label_text in labels.items():
        try:
            tuple_id = int(tuple_id_text)
        except (TypeError, ValueError) as exc:
            raise SessionPersistenceError(
                f"malformed session: bad tuple id {tuple_id_text!r}"
            ) from exc
        state.add_label(tuple_id, Label.from_value(label_text))
    if verify_integrity and fingerprint_matches:
        _verify_outcome(payload, state)
    return state


def load_session(
    path: PathLike,
    table: CandidateTable,
    strict: bool | None = None,
    verify_fingerprint: bool = True,
    verify_integrity: bool = True,
) -> InferenceState:
    """Load a saved session and replay its labels onto ``table``.

    ``strict`` defaults to the strictness recorded in the document (see
    :func:`deserialize_state`).
    """
    payload = read_session_document(path)
    return deserialize_state(
        payload,
        table,
        strict=strict,
        verify_fingerprint=verify_fingerprint,
        verify_integrity=verify_integrity,
    )


def read_session_document(path: PathLike) -> dict[str, object]:
    """Read and structurally validate a saved session file (no replay)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SessionPersistenceError(f"cannot read session file {path!s}: {exc}") from exc
    if not isinstance(payload, dict):
        raise SessionPersistenceError("malformed session: top-level value must be an object")
    return payload


def resume_guided_session(
    path: PathLike,
    table: CandidateTable,
    strategy: object | None = None,
):
    """Convenience helper: load a saved session into a fresh guided session.

    The explicit ``strategy`` argument wins; otherwise the strategy name
    recorded in a v2 document is used, falling back to the default.
    """
    from .modes import GuidedSession

    payload = read_session_document(path)
    state = deserialize_state(payload, table)
    if strategy is None:
        strategy = session_options(payload)["strategy"]
    return GuidedSession(table, strategy=strategy, state=state)
