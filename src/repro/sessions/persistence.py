"""Saving and resuming labeling sessions.

A labeling session — especially a crowdsourced one — rarely happens in one
sitting.  This module serialises the labels collected so far (plus enough
metadata to detect that they are being replayed against the same candidate
table) to a JSON document, and restores an
:class:`~repro.core.state.InferenceState` from it, so any session kind can be
resumed exactly where it stopped.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional, Union

from ..core.examples import Label
from ..core.state import InferenceState
from ..exceptions import ReproError
from ..relational.candidate import CandidateTable

PathLike = Union[str, Path]

#: Format identifier written into every saved session.
FORMAT = "jim-session"
FORMAT_VERSION = 1


class SessionPersistenceError(ReproError):
    """A saved session cannot be read or does not match the candidate table."""


def table_fingerprint(table: CandidateTable) -> str:
    """A stable fingerprint of a candidate table (attributes + rows).

    Used to refuse resuming a session against a different table, where the
    stored tuple ids would silently mean different tuples.
    """
    digest = hashlib.sha256()
    digest.update(repr(table.attribute_names).encode("utf-8"))
    for row in table.rows:
        digest.update(repr(row).encode("utf-8"))
    return digest.hexdigest()


def serialize_state(state: InferenceState) -> dict[str, object]:
    """The JSON-serialisable form of a session's labels and context."""
    return {
        "format": FORMAT,
        "version": FORMAT_VERSION,
        "table_name": state.table.name,
        "table_fingerprint": table_fingerprint(state.table),
        "num_candidates": len(state.table),
        "atoms": [list(atom.attributes) for atom in state.universe.atoms],
        "labels": {
            str(example.tuple_id): example.label.value for example in state.examples
        },
        "converged": state.is_converged(),
        "canonical_query": [list(atom.attributes) for atom in state.inferred_query()],
    }


def save_session(state: InferenceState, path: PathLike) -> None:
    """Write a session's labels to a JSON file."""
    payload = serialize_state(state)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")


def deserialize_state(
    payload: dict[str, object],
    table: CandidateTable,
    strict: bool = True,
    verify_fingerprint: bool = True,
) -> InferenceState:
    """Rebuild an :class:`InferenceState` from a serialised session."""
    if payload.get("format") != FORMAT:
        raise SessionPersistenceError("not a JIM session document")
    if payload.get("version") != FORMAT_VERSION:
        raise SessionPersistenceError(
            f"unsupported session version {payload.get('version')!r} (expected {FORMAT_VERSION})"
        )
    if verify_fingerprint and payload.get("table_fingerprint") != table_fingerprint(table):
        raise SessionPersistenceError(
            "the saved session was recorded against a different candidate table"
        )
    state = InferenceState(table, strict=strict)
    labels = payload.get("labels", {})
    if not isinstance(labels, dict):
        raise SessionPersistenceError("malformed session: 'labels' must be an object")
    for tuple_id_text, label_text in labels.items():
        try:
            tuple_id = int(tuple_id_text)
        except (TypeError, ValueError) as exc:
            raise SessionPersistenceError(
                f"malformed session: bad tuple id {tuple_id_text!r}"
            ) from exc
        state.add_label(tuple_id, Label.from_value(label_text))
    return state


def load_session(
    path: PathLike,
    table: CandidateTable,
    strict: bool = True,
    verify_fingerprint: bool = True,
) -> InferenceState:
    """Load a saved session and replay its labels onto ``table``."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SessionPersistenceError(f"cannot read session file {path!s}: {exc}") from exc
    if not isinstance(payload, dict):
        raise SessionPersistenceError("malformed session: top-level value must be an object")
    return deserialize_state(
        payload, table, strict=strict, verify_fingerprint=verify_fingerprint
    )


def resume_guided_session(
    path: PathLike,
    table: CandidateTable,
    strategy: Optional[object] = None,
):
    """Convenience helper: load a saved session into a fresh guided session."""
    from .modes import GuidedSession

    state = load_session(path, table)
    return GuidedSession(table, strategy=strategy, state=state)
