"""Schema mappings: reading an inferred join query as a GAV mapping.

The paper notes that JIM "is also of interest for applications of schema
mapping inference […] our join queries can be eventually seen as simple GAV
mappings": the inferred equi-join over the source relations defines a target
relation (global-as-view).  This module materialises that reading — it turns a
:class:`~repro.core.queries.JoinQuery` over a candidate table with provenance
into a :class:`GavMapping`, renders it as a Datalog-style source-to-target
dependency and as a ``CREATE VIEW`` statement, and can evaluate it on a
database instance.
"""

from __future__ import annotations

import string
from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..exceptions import CandidateTableError
from .candidate import CandidateTable
from .instance import DatabaseInstance
from .sql import quote_identifier, render_join_sql

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from ..core.queries import JoinQuery


@dataclass(frozen=True)
class GavMapping:
    """A global-as-view mapping defined by an equi-join over source relations.

    Attributes
    ----------
    target:
        Name of the target (view) relation.
    source_relations:
        The source relations joined, in candidate-table order.
    attribute_variables:
        For every candidate-table attribute, the variable naming its value in
        the Datalog rendering; attributes forced equal by the join share one
        variable.
    query:
        The join predicate defining the mapping.
    """

    target: str
    source_relations: tuple[str, ...]
    attribute_variables: dict[str, str]
    query: JoinQuery
    table: CandidateTable

    @property
    def target_attributes(self) -> tuple[str, ...]:
        """The attributes exposed by the target relation (all source columns)."""
        return self.table.attribute_names

    def to_datalog(self) -> str:
        """Render the mapping as a Datalog-style source-to-target rule.

        Shared variables express the join equalities, e.g.::

            Package(f, t, a, t, a) :- Flights(f, t, a), Hotels(t, a).
        """
        head_terms = [self.attribute_variables[name] for name in self.table.attribute_names]
        body_atoms = []
        for relation in self.source_relations:
            terms = [
                self.attribute_variables[attr.name]
                for attr in self.table.attributes
                if attr.source_relation == relation
            ]
            body_atoms.append(f"{relation}({', '.join(terms)})")
        return f"{self.target}({', '.join(head_terms)}) :- {', '.join(body_atoms)}."

    def to_sql_view(self) -> str:
        """Render the mapping as a ``CREATE VIEW`` over the source relations."""
        select = render_join_sql(self.query, self.table)
        return f"CREATE VIEW {quote_identifier(self.target)} AS {select}"

    def evaluate(self, instance: DatabaseInstance) -> list[tuple]:
        """Materialise the target relation on a database instance."""
        fresh = CandidateTable.cross_product(instance, relation_names=self.source_relations)
        selected = self.query.evaluate(fresh)
        return [fresh.row(tuple_id) for tuple_id in sorted(selected)]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_datalog()


def _variable_names() -> list[str]:
    """An inexhaustible-enough supply of readable variable names."""
    singles = list(string.ascii_lowercase)
    doubles = [a + b for a in string.ascii_lowercase for b in string.ascii_lowercase]
    return singles + doubles


def as_gav_mapping(
    query: JoinQuery,
    table: CandidateTable,
    target: str = "Target",
    source_relations: Sequence[str] | None = None,
) -> GavMapping:
    """Read an inferred join query as a GAV mapping over the table's sources.

    The candidate table must carry provenance information (it was built as a
    cross product of base relations); attributes made equal by the query share
    a single Datalog variable, which is how the mapping expresses the join.
    """
    if not table.has_provenance():
        raise CandidateTableError(
            "a GAV mapping needs column provenance; build the candidate table as a "
            "cross product of the source relations"
        )
    if source_relations is None:
        ordered: list[str] = []
        for attr in table.attributes:
            if attr.source_relation not in ordered:
                ordered.append(attr.source_relation)  # type: ignore[arg-type]
        source_relations = ordered
    # Assign one variable per equivalence class of attributes (join equalities
    # merge classes); untouched attributes get their own variable.
    class_of: dict[str, int] = {}
    classes = query.equivalence_classes()
    for index, members in enumerate(classes):
        for member in members:
            class_of[member] = index
    names = _variable_names()
    variables: dict[str, str] = {}
    used = 0
    class_variable: dict[int, str] = {}
    for attr in table.attributes:
        cls = class_of.get(attr.name)
        if cls is None:
            variables[attr.name] = names[used]
            used += 1
        elif cls in class_variable:
            variables[attr.name] = class_variable[cls]
        else:
            variable = names[used]
            used += 1
            class_variable[cls] = variable
            variables[attr.name] = variable
    return GavMapping(
        target=target,
        source_relations=tuple(source_relations),
        attribute_variables=variables,
        query=query,
        table=table,
    )
