"""Database instances: named collections of relations.

A :class:`DatabaseInstance` is the multi-relation input of JIM — the disparate
data sources the user wants to join.  From an instance one builds the
denormalised :class:`~repro.relational.candidate.CandidateTable` (the cross
product of the selected relations) over which inference runs.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from ..exceptions import SchemaError, UnknownRelationError
from .relation import Relation
from .schema import DatabaseSchema


class DatabaseInstance:
    """A named collection of :class:`~repro.relational.relation.Relation`."""

    def __init__(self, name: str = "database", relations: Iterable[Relation] = ()) -> None:
        self.name = name
        self._relations: dict[str, Relation] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: Relation) -> None:
        """Register a relation; duplicate names are an error."""
        if relation.name in self._relations:
            raise SchemaError(f"duplicate relation name {relation.name!r}")
        self._relations[relation.name] = relation

    def relation(self, name: str) -> Relation:
        """Look up a relation by name."""
        try:
            return self._relations[name]
        except KeyError as exc:
            raise UnknownRelationError(f"unknown relation {name!r}") from exc

    @property
    def relations(self) -> tuple[Relation, ...]:
        """All relations, in insertion order."""
        return tuple(self._relations.values())

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Relation names, in insertion order."""
        return tuple(self._relations)

    @property
    def schema(self) -> DatabaseSchema:
        """The database schema of the registered relations."""
        return DatabaseSchema.of(*(relation.schema for relation in self.relations))

    def subset(self, relation_names: Sequence[str], name: str | None = None) -> DatabaseInstance:
        """A new instance containing only the named relations, in that order."""
        return DatabaseInstance(
            name or self.name,
            [self.relation(rel_name) for rel_name in relation_names],
        )

    def total_rows(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(relation) for relation in self.relations)

    def cross_product_size(self, relation_names: Sequence[str] | None = None) -> int:
        """Number of candidate tuples in the cross product of the relations."""
        names = relation_names if relation_names is not None else self.relation_names
        size = 1
        for rel_name in names:
            size *= len(self.relation(rel_name))
        return size

    def summary(self) -> dict[str, int]:
        """Per-relation row counts, useful for experiment logging."""
        return {relation.name: len(relation) for relation in self.relations}

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self.relations)

    def __len__(self) -> int:
        return len(self._relations)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        parts = ", ".join(f"{rel.name}[{len(rel)}]" for rel in self.relations)
        return f"DatabaseInstance({self.name!r}: {parts})"
