"""Integrity-constraint discovery helpers.

JIM explicitly assumes *no* prior knowledge of integrity constraints, but the
experiments of the underlying research paper use primary-key/foreign-key
joins (e.g. on TPC-H) as goal queries.  This module discovers candidate keys
and inclusion dependencies from data so that experiment workloads can derive
realistic goal join predicates automatically — it plays no role during
inference itself.
"""

from __future__ import annotations

import difflib
from collections.abc import Iterable
from dataclasses import dataclass

from .instance import DatabaseInstance
from .relation import Relation
from .types import are_compatible


@dataclass(frozen=True)
class InclusionDependency:
    """``dependent ⊆ referenced``: every value of one column appears in another.

    Unary inclusion dependencies between a non-key and a key column are the
    classic signature of a foreign key, and therefore of a natural equi-join
    predicate to use as an experiment goal query.
    """

    dependent_relation: str
    dependent_attribute: str
    referenced_relation: str
    referenced_attribute: str

    @property
    def as_equality(self) -> tuple[str, str]:
        """The qualified attribute pair this dependency suggests joining on."""
        return (
            f"{self.dependent_relation}.{self.dependent_attribute}",
            f"{self.referenced_relation}.{self.referenced_attribute}",
        )


def candidate_keys(relation: Relation) -> list[str]:
    """Attribute names whose values are unique and non-null across the relation.

    Only unary keys are considered: they are what PK/FK experiment goal
    queries need, and anything wider would not correspond to a single
    equality atom anyway.
    """
    keys = []
    for attribute in relation.schema.attribute_names:
        values = relation.column(attribute)
        if any(value is None for value in values):
            continue
        if len(set(values)) == len(values) and values:
            keys.append(attribute)
    return keys


def unary_inclusion_dependencies(
    instance: DatabaseInstance,
    min_overlap: float = 1.0,
) -> list[InclusionDependency]:
    """Discover unary inclusion dependencies between distinct relations.

    ``min_overlap`` relaxes strict inclusion: a dependency is reported when at
    least that fraction of the dependent column's distinct values appears in
    the referenced column (1.0 = classic inclusion dependency).
    """
    if not 0.0 < min_overlap <= 1.0:
        raise ValueError("min_overlap must be in (0, 1]")
    dependencies = []
    relations = list(instance)
    for dependent in relations:
        for referenced in relations:
            if dependent.name == referenced.name:
                continue
            for dep_attr in dependent.schema.attributes:
                dep_values = {
                    value for value in dependent.column(dep_attr.short_name) if value is not None
                }
                if not dep_values:
                    continue
                for ref_attr in referenced.schema.attributes:
                    if not are_compatible(dep_attr.data_type, ref_attr.data_type):
                        continue
                    ref_values = {
                        value
                        for value in referenced.column(ref_attr.short_name)
                        if value is not None
                    }
                    if not ref_values:
                        continue
                    overlap = len(dep_values & ref_values) / len(dep_values)
                    if overlap >= min_overlap:
                        dependencies.append(
                            InclusionDependency(
                                dependent.name,
                                dep_attr.short_name,
                                referenced.name,
                                ref_attr.short_name,
                            )
                        )
    return dependencies


def foreign_key_candidates(
    instance: DatabaseInstance,
    min_overlap: float = 1.0,
) -> list[InclusionDependency]:
    """Inclusion dependencies whose referenced column is a candidate key.

    These are the joins a database designer would have declared as foreign
    keys, and the natural goal queries for the TPC-H-style experiments.
    """
    keys_by_relation = {relation.name: set(candidate_keys(relation)) for relation in instance}
    return [
        dependency
        for dependency in unary_inclusion_dependencies(instance, min_overlap=min_overlap)
        if dependency.referenced_attribute in keys_by_relation[dependency.referenced_relation]
    ]


def _normalised_attribute_name(name: str) -> str:
    """Strip a short relation-style prefix (``o_custkey`` → ``custkey``) and lowercase."""
    lowered = name.lower()
    head, separator, tail = lowered.partition("_")
    if separator and tail and len(head) <= 2:
        return tail
    return lowered


def attribute_name_similarity(left: str, right: str) -> float:
    """Similarity in [0, 1] between two attribute names, prefix-insensitive.

    Foreign keys conventionally reuse the referenced attribute's name modulo a
    relation prefix (``o_custkey`` vs ``c_custkey``); this heuristic scores
    such pairs close to 1 and unrelated names close to 0.
    """
    left_norm = _normalised_attribute_name(left)
    right_norm = _normalised_attribute_name(right)
    if left_norm == right_norm:
        return 1.0
    return difflib.SequenceMatcher(None, left_norm, right_norm).ratio()


@dataclass(frozen=True)
class RankedForeignKey:
    """A foreign-key candidate together with its ranking score."""

    dependency: InclusionDependency
    name_similarity: float
    dependent_is_key: bool

    @property
    def score(self) -> float:
        """Higher is more plausible: name similarity, penalised for key⊆key pairs."""
        penalty = 0.5 if self.dependent_is_key else 0.0
        return self.name_similarity - penalty


def ranked_foreign_keys(
    instance: DatabaseInstance,
    min_overlap: float = 1.0,
    min_score: float = 0.0,
) -> list[RankedForeignKey]:
    """Foreign-key candidates ranked by plausibility.

    On small generated instances many spurious inclusion dependencies hold by
    chance (every region key happens to be a valid customer key, …).  Ranking
    by attribute-name similarity and demoting dependencies whose dependent
    column is itself a key keeps the classic foreign keys at the top; callers
    can threshold with ``min_score`` (e.g. ``0.6``) to obtain a clean list.
    """
    keys_by_relation = {relation.name: set(candidate_keys(relation)) for relation in instance}
    ranked = []
    for dependency in foreign_key_candidates(instance, min_overlap=min_overlap):
        similarity = attribute_name_similarity(
            dependency.dependent_attribute, dependency.referenced_attribute
        )
        dependent_is_key = (
            dependency.dependent_attribute in keys_by_relation[dependency.dependent_relation]
        )
        candidate = RankedForeignKey(dependency, similarity, dependent_is_key)
        if candidate.score >= min_score:
            ranked.append(candidate)
    ranked.sort(key=lambda item: (-item.score, item.dependency.dependent_relation,
                                  item.dependency.dependent_attribute))
    return ranked


def join_goal_pairs(
    dependencies: Iterable[InclusionDependency],
    limit: int | None = None,
) -> list[tuple[str, str]]:
    """Qualified attribute pairs to use as goal-query atoms, deduplicated."""
    seen: set[frozenset[str]] = set()
    pairs = []
    for dependency in dependencies:
        left, right = dependency.as_equality
        key = frozenset((left, right))
        if key in seen:
            continue
        seen.add(key)
        pairs.append((left, right))
        if limit is not None and len(pairs) >= limit:
            break
    return pairs
