"""Candidate tables: the denormalised tuple space the user labels.

JIM presents the user with tuples of the cross product of the relations to be
joined (the paper's Figure 1 shows such a denormalised table for a flight and
a hotel relation).  A :class:`CandidateTable` materialises that space —
either directly from flat rows, or as the (optionally sampled) cross product
of the relations of a :class:`~repro.relational.instance.DatabaseInstance` —
and records, for every column, which base relation it came from.  The origin
information is what lets the atom universe restrict candidate equality atoms
to cross-relation pairs, exactly like join predicates in the paper.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from ..exceptions import CandidateTableError, UnknownAttributeError
from .instance import DatabaseInstance
from .relation import Relation
from .types import DataType, infer_column_type

Row = tuple


@dataclass(frozen=True)
class CandidateAttribute:
    """A column of the candidate table.

    ``source_relation`` is ``None`` for flat tables whose provenance is
    unknown (the paper's motivating scenario: "no knowledge of the schema and
    of the provenance of the data").
    """

    name: str
    data_type: DataType = DataType.TEXT
    source_relation: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


class CandidateTable:
    """The denormalised table of candidate tuples presented to the user.

    Rows are addressed by a stable integer ``tuple_id`` (their position),
    which is the identifier the inference core, oracles and sessions use.
    """

    def __init__(
        self,
        attributes: Sequence[CandidateAttribute],
        rows: Iterable[Sequence[object]],
        name: str = "candidates",
    ) -> None:
        self.name = name
        self.attributes: tuple[CandidateAttribute, ...] = tuple(attributes)
        if not self.attributes:
            raise CandidateTableError("a candidate table needs at least one attribute")
        names = [attr.name for attr in self.attributes]
        if len(set(names)) != len(names):
            raise CandidateTableError("candidate attribute names must be unique")
        self._index = {attr.name: pos for pos, attr in enumerate(self.attributes)}
        self.rows: tuple[Row, ...] = tuple(tuple(row) for row in rows)
        for row in self.rows:
            if len(row) != len(self.attributes):
                raise CandidateTableError(
                    f"row arity {len(row)} does not match attribute count {len(self.attributes)}"
                )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rows(
        cls,
        attribute_names: Sequence[str],
        rows: Iterable[Sequence[object]],
        name: str = "candidates",
        source_relations: Optional[Sequence[Optional[str]]] = None,
    ) -> "CandidateTable":
        """Build a candidate table from flat rows, inferring column types.

        ``source_relations`` optionally records, per column, the base relation
        it conceptually belongs to (used to scope the atom universe).
        """
        materialised = [tuple(row) for row in rows]
        for row in materialised:
            if len(row) != len(attribute_names):
                raise CandidateTableError(
                    f"row arity {len(row)} does not match attribute count {len(attribute_names)}"
                )
        if source_relations is not None and len(source_relations) != len(attribute_names):
            raise CandidateTableError(
                "source_relations must have one entry per attribute when provided"
            )
        attributes = []
        for pos, attr_name in enumerate(attribute_names):
            column = [row[pos] for row in materialised] if materialised else []
            data_type = infer_column_type(column) if column else DataType.TEXT
            source = source_relations[pos] if source_relations is not None else None
            attributes.append(CandidateAttribute(attr_name, data_type, source))
        return cls(attributes, materialised, name=name)

    @classmethod
    def from_relation(cls, relation: Relation, name: Optional[str] = None) -> "CandidateTable":
        """Treat a single (already denormalised) relation as the candidate table."""
        attributes = [
            CandidateAttribute(attr.short_name, attr.data_type, None)
            for attr in relation.schema.attributes
        ]
        return cls(attributes, relation.rows, name=name or relation.name)

    @classmethod
    def cross_product(
        cls,
        instance: DatabaseInstance,
        relation_names: Optional[Sequence[str]] = None,
        name: Optional[str] = None,
        max_rows: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> "CandidateTable":
        """Build the cross product of the given relations as a candidate table.

        Column names are qualified (``Relation.attr``).  When ``max_rows`` is
        given and the full cross product is larger, a uniform random sample of
        ``max_rows`` combinations is drawn (reproducible via ``rng``) — the
        substitution for presenting only a manageable subset to the user.
        """
        names = list(relation_names) if relation_names is not None else list(instance.relation_names)
        if not names:
            raise CandidateTableError("cross product needs at least one relation")
        relations = [instance.relation(rel_name) for rel_name in names]
        attributes: list[CandidateAttribute] = []
        for relation in relations:
            for attr in relation.schema.attributes:
                attributes.append(
                    CandidateAttribute(attr.qualified_name, attr.data_type, relation.name)
                )
        total = 1
        for relation in relations:
            total *= len(relation)
        table_name = name or "x".join(names)
        if total == 0:
            return cls(attributes, [], name=table_name)
        if max_rows is not None and total > max_rows:
            rng = rng or random.Random(0)
            sizes = [len(relation) for relation in relations]
            chosen = rng.sample(range(total), max_rows)
            rows = []
            for flat_index in sorted(chosen):
                row: list[object] = []
                remainder = flat_index
                # Mixed-radix decoding of the flat index into one index per relation.
                for relation, size in zip(reversed(relations), reversed(sizes)):
                    remainder, position = divmod(remainder, size)
                    row = list(relation.rows[position]) + row
                rows.append(tuple(row))
            return cls(attributes, rows, name=table_name)
        rows = [
            tuple(itertools.chain.from_iterable(combo))
            for combo in itertools.product(*(relation.rows for relation in relations))
        ]
        return cls(attributes, rows, name=table_name)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Column names, in order."""
        return tuple(attr.name for attr in self.attributes)

    @property
    def tuple_ids(self) -> range:
        """All valid tuple identifiers."""
        return range(len(self.rows))

    def position_of(self, attribute_name: str) -> int:
        """Index of a column by name."""
        try:
            return self._index[attribute_name]
        except KeyError as exc:
            raise UnknownAttributeError(
                f"candidate table has no attribute {attribute_name!r}"
            ) from exc

    def attribute(self, attribute_name: str) -> CandidateAttribute:
        """The :class:`CandidateAttribute` with the given name."""
        return self.attributes[self.position_of(attribute_name)]

    def value(self, tuple_id: int, attribute_name: str) -> object:
        """The value of one attribute of one tuple."""
        return self.rows[tuple_id][self.position_of(attribute_name)]

    def row(self, tuple_id: int) -> Row:
        """The tuple with the given identifier."""
        try:
            return self.rows[tuple_id]
        except IndexError as exc:
            raise CandidateTableError(f"unknown tuple id {tuple_id}") from exc

    def as_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by attribute name."""
        names = self.attribute_names
        return [dict(zip(names, row)) for row in self.rows]

    def column(self, attribute_name: str) -> list[object]:
        """All values of a column, in row order."""
        position = self.position_of(attribute_name)
        return [row[position] for row in self.rows]

    def source_relations(self) -> tuple[Optional[str], ...]:
        """The source relation of each column (``None`` when unknown)."""
        return tuple(attr.source_relation for attr in self.attributes)

    def has_provenance(self) -> bool:
        """Whether every column knows the base relation it comes from."""
        return all(attr.source_relation is not None for attr in self.attributes)

    def subset(self, tuple_ids: Sequence[int], name: Optional[str] = None) -> "CandidateTable":
        """A new candidate table containing only the given tuples (re-numbered)."""
        rows = [self.row(tuple_id) for tuple_id in tuple_ids]
        return CandidateTable(self.attributes, rows, name=name or f"{self.name}-subset")

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"CandidateTable({self.name!r}, attributes={len(self.attributes)}, "
            f"rows={len(self.rows)})"
        )


def denormalize(
    instance: DatabaseInstance,
    relation_names: Optional[Sequence[str]] = None,
    max_rows: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> CandidateTable:
    """Shorthand for :meth:`CandidateTable.cross_product`."""
    return CandidateTable.cross_product(
        instance, relation_names=relation_names, max_rows=max_rows, rng=rng
    )


def candidate_table_to_relation(table: CandidateTable, name: Optional[str] = None) -> Relation:
    """Convert a candidate table back into a flat relation (for CSV/SQLite export)."""
    return Relation.build(
        name or table.name,
        # SQLite and RelationSchema dislike dots in plain column names, so the
        # qualified name's dot is replaced by an underscore on conversion.
        [attr.name.replace(".", "_") for attr in table.attributes],
        table.rows,
        data_types=[attr.data_type for attr in table.attributes],
    )
