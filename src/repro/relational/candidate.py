"""Candidate tables: the denormalised tuple space the user labels.

JIM presents the user with tuples of the cross product of the relations to be
joined (the paper's Figure 1 shows such a denormalised table for a flight and
a hotel relation).  A :class:`CandidateTable` represents that space — either
directly from flat rows, or as the (optionally sampled) cross product of the
relations of a :class:`~repro.relational.instance.DatabaseInstance` — and
records, for every column, which base relation it came from.  The origin
information is what lets the atom universe restrict candidate equality atoms
to cross-relation pairs, exactly like join predicates in the paper.

**Columnar core.**  An unsampled cross product is *not* materialised: the
table keeps a :class:`~repro.relational.columnar.ProductFactorization` (the
base relations' rows plus mixed-radix arithmetic) and reconstructs candidate
rows on demand from their ``tuple_id``.  ``table.rows`` stays available as a
lazy, cached property for code that genuinely needs the flat form, but the
setup pipeline (atom universe, equality-type index, fingerprinting, query
evaluation) works on the factorized/columnar view and never pays the
O(|R₁|·…·|Rₖ|) materialisation.  Flat tables (given rows, or sampled cross
products) store their rows eagerly, as before, and expose the same columnar
encoding through :meth:`CandidateTable.equality_codes`.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from ..exceptions import CandidateTableError, UnknownAttributeError
from .columnar import FactorGrouping, ProductFactorization, ValueCodec, group_product
from .instance import DatabaseInstance
from .relation import Relation
from .types import DataType, infer_row_types

Row = tuple


@dataclass(frozen=True)
class CandidateAttribute:
    """A column of the candidate table.

    ``source_relation`` is ``None`` for flat tables whose provenance is
    unknown (the paper's motivating scenario: "no knowledge of the schema and
    of the provenance of the data").
    """

    name: str
    data_type: DataType = DataType.TEXT
    source_relation: str | None = None

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


class CandidateTable:
    """The denormalised table of candidate tuples presented to the user.

    Rows are addressed by a stable integer ``tuple_id`` (their position),
    which is the identifier the inference core, oracles and sessions use.
    """

    def __init__(
        self,
        attributes: Sequence[CandidateAttribute],
        rows: Iterable[Sequence[object]],
        name: str = "candidates",
    ) -> None:
        self._init_schema(attributes, name)
        self._factorization: ProductFactorization | None = None
        self._rows: tuple[Row, ...] | None = tuple(tuple(row) for row in rows)
        for row in self._rows:
            if len(row) != len(self.attributes):
                raise CandidateTableError(
                    f"row arity {len(row)} does not match attribute count {len(self.attributes)}"
                )
        self._num_rows = len(self._rows)

    def _init_schema(self, attributes: Sequence[CandidateAttribute], name: str) -> None:
        self.name = name
        self.attributes: tuple[CandidateAttribute, ...] = tuple(attributes)
        if not self.attributes:
            raise CandidateTableError("a candidate table needs at least one attribute")
        names = [attr.name for attr in self.attributes]
        if len(set(names)) != len(names):
            raise CandidateTableError("candidate attribute names must be unique")
        self._index = {attr.name: pos for pos, attr in enumerate(self.attributes)}
        self._fingerprint: str | None = None
        self._groupings: dict[tuple[int, ...], FactorGrouping] = {}

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def _from_factorization(
        cls,
        attributes: Sequence[CandidateAttribute],
        factorization: ProductFactorization,
        name: str,
    ) -> CandidateTable:
        """Build a table over a factorized cross product (rows stay lazy)."""
        table = cls.__new__(cls)
        table._init_schema(attributes, name)
        table._factorization = factorization
        table._rows = None
        table._num_rows = factorization.num_rows
        return table

    @classmethod
    def from_rows(
        cls,
        attribute_names: Sequence[str],
        rows: Iterable[Sequence[object]],
        name: str = "candidates",
        source_relations: Sequence[str | None] | None = None,
    ) -> CandidateTable:
        """Build a candidate table from flat rows, inferring column types.

        ``source_relations`` optionally records, per column, the base relation
        it conceptually belongs to (used to scope the atom universe).  All
        column types are inferred in a single pass over the rows.
        """
        materialised = [tuple(row) for row in rows]
        for row in materialised:
            if len(row) != len(attribute_names):
                raise CandidateTableError(
                    f"row arity {len(row)} does not match attribute count {len(attribute_names)}"
                )
        if source_relations is not None and len(source_relations) != len(attribute_names):
            raise CandidateTableError(
                "source_relations must have one entry per attribute when provided"
            )
        if materialised:
            data_types = infer_row_types(materialised, len(attribute_names))
        else:
            # No rows to infer from: keep the historical TEXT default.
            data_types = [DataType.TEXT] * len(attribute_names)
        attributes = [
            CandidateAttribute(
                attr_name,
                data_types[pos],
                source_relations[pos] if source_relations is not None else None,
            )
            for pos, attr_name in enumerate(attribute_names)
        ]
        return cls(attributes, materialised, name=name)

    @classmethod
    def from_relation(cls, relation: Relation, name: str | None = None) -> CandidateTable:
        """Treat a single (already denormalised) relation as the candidate table."""
        attributes = [
            CandidateAttribute(attr.short_name, attr.data_type, None)
            for attr in relation.schema.attributes
        ]
        return cls(attributes, relation.rows, name=name or relation.name)

    @classmethod
    def cross_product(
        cls,
        instance: DatabaseInstance,
        relation_names: Sequence[str] | None = None,
        name: str | None = None,
        max_rows: int | None = None,
        rng: random.Random | None = None,
    ) -> CandidateTable:
        """Build the cross product of the given relations as a candidate table.

        Column names are qualified (``Relation.attr``).  When ``max_rows`` is
        given and the full cross product is larger, a uniform random sample of
        ``max_rows`` combinations is drawn (reproducible via ``rng``) — the
        substitution for presenting only a manageable subset to the user.

        The unsampled product is kept *factorized* (base relation rows plus
        mixed-radix decoding); the flat rows are reconstructed lazily and
        only if something asks for them.
        """
        names = list(relation_names) if relation_names is not None else list(instance.relation_names)
        if not names:
            raise CandidateTableError("cross product needs at least one relation")
        relations = [instance.relation(rel_name) for rel_name in names]
        attributes: list[CandidateAttribute] = []
        for relation in relations:
            for attr in relation.schema.attributes:
                attributes.append(
                    CandidateAttribute(attr.qualified_name, attr.data_type, relation.name)
                )
        total = 1
        for relation in relations:
            total *= len(relation)
        table_name = name or "x".join(names)
        if total == 0:
            return cls(attributes, [], name=table_name)
        if max_rows is not None and total > max_rows:
            rng = rng or random.Random(0)
            sizes = [len(relation) for relation in relations]
            relation_rows = [relation.rows for relation in relations]
            chosen = rng.sample(range(total), max_rows)
            rows = []
            for flat_index in sorted(chosen):
                row: list[object] = []
                remainder = flat_index
                # Mixed-radix decoding of the flat index into one index per relation.
                for rel_rows, size in zip(reversed(relation_rows), reversed(sizes), strict=True):
                    remainder, position = divmod(remainder, size)
                    row = list(rel_rows[position]) + row
                rows.append(tuple(row))
            return cls(attributes, rows, name=table_name)
        factorization = ProductFactorization(
            [relation.rows for relation in relations],
            [relation.arity for relation in relations],
        )
        return cls._from_factorization(attributes, factorization, name=table_name)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def rows(self) -> tuple[Row, ...]:
        """All rows, in ``tuple_id`` order.

        For factorized cross products the flat tuple is materialised lazily
        on first access and cached; prefer :meth:`row`, :meth:`column` or
        iteration when the full materialisation is not needed.
        """
        if self._rows is None:
            assert self._factorization is not None
            self._rows = tuple(self._factorization.iter_rows())
        return self._rows

    def factorization(self) -> ProductFactorization | None:
        """The factorized form of the table, when it is an unsampled product."""
        return self._factorization

    def is_materialized(self) -> bool:
        """Whether the flat rows are currently held in memory."""
        return self._rows is not None

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Column names, in order."""
        return tuple(attr.name for attr in self.attributes)

    @property
    def tuple_ids(self) -> range:
        """All valid tuple identifiers."""
        return range(self._num_rows)

    def position_of(self, attribute_name: str) -> int:
        """Index of a column by name."""
        try:
            return self._index[attribute_name]
        except KeyError as exc:
            raise UnknownAttributeError(
                f"candidate table has no attribute {attribute_name!r}"
            ) from exc

    def attribute(self, attribute_name: str) -> CandidateAttribute:
        """The :class:`CandidateAttribute` with the given name."""
        return self.attributes[self.position_of(attribute_name)]

    def value(self, tuple_id: int, attribute_name: str) -> object:
        """The value of one attribute of one tuple."""
        return self.row(tuple_id)[self.position_of(attribute_name)]

    def row(self, tuple_id: int) -> Row:
        """The tuple with the given identifier (decoded on demand)."""
        if self._rows is not None:
            try:
                return self._rows[tuple_id]
            except IndexError as exc:
                raise CandidateTableError(f"unknown tuple id {tuple_id}") from exc
        if not 0 <= tuple_id < self._num_rows:
            raise CandidateTableError(f"unknown tuple id {tuple_id}")
        assert self._factorization is not None
        return self._factorization.row(tuple_id)

    def as_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by attribute name."""
        names = self.attribute_names
        return [dict(zip(names, row, strict=True)) for row in self]

    def column(self, attribute_name: str) -> list[object]:
        """All values of a column, in row order (factorized: tile/repeat)."""
        position = self.position_of(attribute_name)
        if self._rows is None:
            assert self._factorization is not None
            return self._factorization.column_values(position)
        return [row[position] for row in self._rows]

    def equality_codes(self, columns: Sequence[int] | None = None) -> list[list[int]]:
        """Value-interned code arrays for the given columns (all by default).

        Codes follow Python ``==`` semantics and are comparable *across* the
        returned columns (one shared codec per call); negative codes mark
        cells (``None``/NaN) that never compare equal to anything.  On a
        factorized table the columns are encoded by tile/repeat — the flat
        ``rows`` tuple is never materialised.  Raises
        :class:`~repro.relational.columnar.UnencodableValue` on unhashable
        cells.
        """
        positions = list(columns) if columns is not None else list(range(len(self.attributes)))
        codec = ValueCodec()
        if self._rows is None:
            assert self._factorization is not None
            return [
                codec.encode(self._factorization.column_values(position))
                for position in positions
            ]
        rows = self._rows
        return [codec.encode([row[position] for row in rows]) for position in positions]

    def factor_grouping(self, columns: Sequence[int]) -> FactorGrouping:
        """Cached :func:`~repro.relational.columnar.group_product` over this table.

        Only meaningful on factorized tables.  The grouping of a column
        subset is immutable, so it is memoised per subset — the equality-type
        index and repeated query evaluations (e.g. drawing goal queries)
        share one encoding pass instead of re-interning the base relations
        per call.  Raises
        :class:`~repro.relational.columnar.UnencodableValue` on unhashable
        cells (failures are not cached).
        """
        if self._factorization is None:
            raise CandidateTableError("factor_grouping needs a factorized table")
        key = tuple(columns)
        grouping = self._groupings.get(key)
        if grouping is None:
            grouping = group_product(self._factorization, key)
            self._groupings[key] = grouping
        return grouping

    def fingerprint(self) -> str:
        """A stable content fingerprint (attributes + rows), memoised.

        Streaming: factorized tables are hashed row by row without
        materialising the flat ``rows`` tuple.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(repr(self.attribute_names).encode("utf-8"))
            for row in self:
                digest.update(repr(row).encode("utf-8"))
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def source_relations(self) -> tuple[str | None, ...]:
        """The source relation of each column (``None`` when unknown)."""
        return tuple(attr.source_relation for attr in self.attributes)

    def has_provenance(self) -> bool:
        """Whether every column knows the base relation it comes from."""
        return all(attr.source_relation is not None for attr in self.attributes)

    def subset(self, tuple_ids: Sequence[int], name: str | None = None) -> CandidateTable:
        """A new candidate table containing only the given tuples (re-numbered)."""
        rows = [self.row(tuple_id) for tuple_id in tuple_ids]
        return CandidateTable(self.attributes, rows, name=name or f"{self.name}-subset")

    def __iter__(self) -> Iterator[Row]:
        if self._rows is not None:
            return iter(self._rows)
        assert self._factorization is not None
        return self._factorization.iter_rows()

    def __len__(self) -> int:
        return self._num_rows

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"CandidateTable({self.name!r}, attributes={len(self.attributes)}, "
            f"rows={self._num_rows})"
        )


def denormalize(
    instance: DatabaseInstance,
    relation_names: Sequence[str] | None = None,
    max_rows: int | None = None,
    rng: random.Random | None = None,
) -> CandidateTable:
    """Shorthand for :meth:`CandidateTable.cross_product`."""
    return CandidateTable.cross_product(
        instance, relation_names=relation_names, max_rows=max_rows, rng=rng
    )


def candidate_table_to_relation(table: CandidateTable, name: str | None = None) -> Relation:
    """Convert a candidate table back into a flat relation (for CSV/SQLite export)."""
    return Relation.build(
        name or table.name,
        # SQLite and RelationSchema dislike dots in plain column names, so the
        # qualified name's dot is replaced by an underscore on conversion.
        [attr.name.replace(".", "_") for attr in table.attributes],
        table.rows,
        data_types=[attr.data_type for attr in table.attributes],
    )
