"""SQLite integration: persist instances and execute inferred joins.

JIM's output is an equi-join query; a user who adopted the library would want
to (a) load their raw tables from an existing SQLite database and (b) run the
inferred query against it.  This adapter provides both directions using only
the standard-library ``sqlite3`` module.
"""

from __future__ import annotations

import sqlite3
from collections.abc import Sequence
from pathlib import Path
from typing import TYPE_CHECKING

from ..exceptions import SchemaError
from .candidate import CandidateTable, candidate_table_to_relation
from .instance import DatabaseInstance
from .relation import Relation
from .schema import Attribute, RelationSchema
from .sql import quote_identifier, render_join_sql
from .types import DataType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from ..core.queries import JoinQuery

PathLike = str | Path

_SQL_TYPE: dict[DataType, str] = {
    DataType.TEXT: "TEXT",
    DataType.INTEGER: "INTEGER",
    DataType.FLOAT: "REAL",
    DataType.BOOLEAN: "INTEGER",
    DataType.DATE: "TEXT",
    DataType.NULL: "TEXT",
}

_AFFINITY_TO_TYPE: dict[str, DataType] = {
    "INTEGER": DataType.INTEGER,
    "INT": DataType.INTEGER,
    "REAL": DataType.FLOAT,
    "FLOAT": DataType.FLOAT,
    "DOUBLE": DataType.FLOAT,
    "TEXT": DataType.TEXT,
    "VARCHAR": DataType.TEXT,
    "CHAR": DataType.TEXT,
    "BOOLEAN": DataType.BOOLEAN,
    "DATE": DataType.DATE,
}


def _sqlite_value(value: object) -> object:
    """Convert a Python value to something sqlite3 can bind."""
    if isinstance(value, bool):
        return int(value)
    if hasattr(value, "isoformat"):
        return value.isoformat()  # type: ignore[union-attr]
    return value


def connect(path: PathLike = ":memory:") -> sqlite3.Connection:
    """Open a SQLite connection (in-memory by default)."""
    return sqlite3.connect(str(path))


def create_table_sql(schema: RelationSchema) -> str:
    """Render a ``CREATE TABLE`` statement for a relation schema."""
    columns = ", ".join(
        f"{quote_identifier(attr.short_name)} {_SQL_TYPE[attr.data_type]}"
        for attr in schema.attributes
    )
    return f"CREATE TABLE {quote_identifier(schema.name)} ({columns})"


def write_relation(connection: sqlite3.Connection, relation: Relation) -> None:
    """Create the relation's table and insert all its tuples."""
    connection.execute(create_table_sql(relation.schema))
    placeholders = ", ".join("?" for _ in range(relation.arity))
    statement = f"INSERT INTO {quote_identifier(relation.name)} VALUES ({placeholders})"
    connection.executemany(
        statement, [tuple(_sqlite_value(value) for value in row) for row in relation]
    )
    connection.commit()


def write_instance(connection: sqlite3.Connection, instance: DatabaseInstance) -> None:
    """Persist every relation of a database instance."""
    for relation in instance:
        write_relation(connection, relation)


def write_candidate_table(connection: sqlite3.Connection, table: CandidateTable) -> None:
    """Persist a flat candidate table (qualified dots become underscores)."""
    write_relation(connection, candidate_table_to_relation(table))


def read_relation(connection: sqlite3.Connection, table_name: str) -> Relation:
    """Load a SQLite table into a :class:`Relation`."""
    info = connection.execute(f"PRAGMA table_info({quote_identifier(table_name)})").fetchall()
    if not info:
        raise SchemaError(f"SQLite database has no table named {table_name!r}")
    attributes = []
    for _, column_name, declared_type, *_rest in info:
        base_type = (declared_type or "TEXT").split("(")[0].strip().upper()
        data_type = _AFFINITY_TO_TYPE.get(base_type, DataType.TEXT)
        attributes.append(Attribute(column_name, data_type))
    schema = RelationSchema(table_name, attributes)
    rows = connection.execute(f"SELECT * FROM {quote_identifier(table_name)}").fetchall()
    return Relation(schema, [tuple(row) for row in rows])


def read_instance(
    connection: sqlite3.Connection,
    table_names: Sequence[str] | None = None,
    name: str = "database",
) -> DatabaseInstance:
    """Load several (or all) SQLite tables into a :class:`DatabaseInstance`."""
    if table_names is None:
        table_names = [
            row[0]
            for row in connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table' ORDER BY name"
            )
        ]
    return DatabaseInstance(name, [read_relation(connection, table) for table in table_names])


def execute_join(
    connection: sqlite3.Connection,
    query: JoinQuery,
    table: CandidateTable,
    projection: Sequence[str] | None = None,
) -> list[tuple]:
    """Execute an inferred join query against the base relations in SQLite.

    The relations referenced by the candidate table's provenance must already
    exist in the connection (use :func:`write_instance`).  Returns the result
    rows, which — by construction — match what
    :meth:`JoinQuery.evaluate <repro.core.queries.JoinQuery.evaluate>`
    selects from the candidate table (modulo row order).
    """
    sql = render_join_sql(query, table, projection=projection)
    return [tuple(row) for row in connection.execute(sql).fetchall()]
