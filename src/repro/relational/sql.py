"""Rendering inferred join queries as SQL.

The end product of a JIM session is an equi-join predicate.  A non-expert
user never sees SQL, but downstream tools do: this module renders an inferred
:class:`~repro.core.queries.JoinQuery` either as a ``SELECT … FROM … WHERE``
statement over the base relations or as a filter over the flat candidate
table, so the result can be executed against SQLite (see
:mod:`repro.relational.sqlite_adapter`) or any other engine.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from ..exceptions import CandidateTableError
from .candidate import CandidateTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from ..core.queries import JoinQuery


def quote_identifier(identifier: str) -> str:
    """Quote an SQL identifier (doubling embedded quotes)."""
    escaped = identifier.replace('"', '""')
    return f'"{escaped}"'


def _split_qualified(name: str) -> tuple[str | None, str]:
    """Split ``Relation.attr`` into (relation, attr); flat names have no relation."""
    if "." in name:
        relation, attr = name.rsplit(".", 1)
        return relation, attr
    return None, name


def column_reference(name: str) -> str:
    """Render a possibly-qualified attribute name as an SQL column reference."""
    relation, attr = _split_qualified(name)
    if relation is None:
        return quote_identifier(attr)
    return f"{quote_identifier(relation)}.{quote_identifier(attr)}"


def render_join_sql(
    query: JoinQuery,
    table: CandidateTable,
    projection: Sequence[str] | None = None,
) -> str:
    """Render a join query as SQL over the base relations of ``table``.

    Requires the candidate table to know the provenance of its columns (i.e.
    it was built as a cross product of base relations); the flat form is
    available through :func:`render_flat_sql` otherwise.
    """
    if not table.has_provenance():
        raise CandidateTableError(
            "cannot render relational SQL for a candidate table without column provenance; "
            "use render_flat_sql instead"
        )
    relations = []
    for attr in table.attributes:
        if attr.source_relation not in relations:
            relations.append(attr.source_relation)
    select_list = (
        ", ".join(column_reference(name) for name in projection)
        if projection
        else ", ".join(column_reference(attr.name) for attr in table.attributes)
    )
    from_clause = ", ".join(quote_identifier(relation) for relation in relations)
    conditions = [
        f"{column_reference(atom.left)} = {column_reference(atom.right)}"
        for atom in sorted(query.atoms, key=lambda a: (a.left, a.right))
    ]
    sql = f"SELECT {select_list} FROM {from_clause}"
    if conditions:
        sql += " WHERE " + " AND ".join(conditions)
    return sql


def render_flat_sql(
    query: JoinQuery,
    table: CandidateTable,
    table_name: str | None = None,
) -> str:
    """Render a join query as a filter over the flat candidate table.

    Column names have their qualification dot replaced by an underscore, the
    same convention used when exporting a candidate table to SQLite/CSV.
    """
    name = quote_identifier((table_name or table.name).replace(".", "_"))
    conditions = [
        f"{quote_identifier(atom.left.replace('.', '_'))} = "
        f"{quote_identifier(atom.right.replace('.', '_'))}"
        for atom in sorted(query.atoms, key=lambda a: (a.left, a.right))
    ]
    sql = f"SELECT * FROM {name}"
    if conditions:
        sql += " WHERE " + " AND ".join(conditions)
    return sql
