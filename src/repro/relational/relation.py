"""In-memory relations: a schema plus a bag of tuples.

Relations are the raw inputs of JIM: the user wants to join several of them
without knowing the schema constraints.  The inference core never reads
relations directly — it works on the denormalised
:class:`~repro.relational.candidate.CandidateTable` built from them — but the
relational layer is what examples, datasets and the SQLite adapter manipulate.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence

from ..exceptions import SchemaError
from .schema import Attribute, RelationSchema
from .types import DataType, infer_row_types

Row = tuple


class Relation:
    """A relation instance: a :class:`RelationSchema` and its tuples.

    Tuples are stored in insertion order; duplicates are allowed (bag
    semantics), matching what a user exporting raw CSV data would have.
    """

    def __init__(self, schema: RelationSchema, rows: Iterable[Sequence[object]] = ()) -> None:
        self.schema = schema
        self._rows: list[Row] = []
        for row in rows:
            self.insert(row)

    @classmethod
    def build(
        cls,
        name: str,
        attribute_names: Sequence[str],
        rows: Iterable[Sequence[object]],
        data_types: Sequence[DataType] | None = None,
    ) -> Relation:
        """Convenience constructor that infers attribute types from the data.

        When ``data_types`` is omitted each column's type is inferred from the
        provided rows via :func:`~repro.relational.types.infer_column_type`.
        """
        materialised = [tuple(row) for row in rows]
        for row in materialised:
            if len(row) != len(attribute_names):
                raise SchemaError(
                    f"row arity {len(row)} does not match attribute count "
                    f"{len(attribute_names)} for relation {name!r}"
                )
        if data_types is None:
            data_types = infer_row_types(materialised, len(attribute_names))
        if len(data_types) != len(attribute_names):
            raise SchemaError("data_types length must match attribute_names length")
        schema = RelationSchema(
            name,
            [Attribute(attr, dtype) for attr, dtype in zip(attribute_names, data_types, strict=True)],
        )
        return cls(schema, materialised)

    @property
    def name(self) -> str:
        """Name of the relation."""
        return self.schema.name

    @property
    def rows(self) -> tuple[Row, ...]:
        """All tuples, in insertion order."""
        return tuple(self._rows)

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return self.schema.arity

    def insert(self, row: Sequence[object]) -> None:
        """Append a tuple, validating its arity."""
        values = tuple(row)
        if len(values) != self.schema.arity:
            raise SchemaError(
                f"row arity {len(values)} does not match schema arity "
                f"{self.schema.arity} for relation {self.name!r}"
            )
        self._rows.append(values)

    def extend(self, rows: Iterable[Sequence[object]]) -> None:
        """Append several tuples."""
        for row in rows:
            self.insert(row)

    def column(self, attribute_name: str) -> list[object]:
        """All values of one attribute, in row order."""
        position = self.schema.position_of(attribute_name)
        return [row[position] for row in self._rows]

    def project(self, attribute_names: Sequence[str], name: str | None = None) -> Relation:
        """Return a new relation containing only the given attributes."""
        positions = [self.schema.position_of(attr) for attr in attribute_names]
        attributes = [self.schema.attributes[pos] for pos in positions]
        schema = RelationSchema(name or self.name, attributes)
        projected = Relation(schema)
        for row in self._rows:
            projected.insert(tuple(row[pos] for pos in positions))
        return projected

    def select(self, predicate: Callable[[Row], bool], name: str | None = None) -> Relation:
        """Return a new relation with the rows satisfying ``predicate``."""
        schema = self.schema if name is None else RelationSchema(name, self.schema.attributes)
        selected = Relation(schema)
        for row in self._rows:
            if predicate(row):
                selected.insert(row)
        return selected

    def distinct(self) -> Relation:
        """Return a copy with duplicate tuples removed (first occurrence kept)."""
        seen: set[Row] = set()
        unique = Relation(self.schema)
        for row in self._rows:
            if row not in seen:
                seen.add(row)
                unique.insert(row)
        return unique

    def rename(self, name: str) -> Relation:
        """Return a copy of the relation under a different name."""
        schema = RelationSchema(name, [attr.qualify(name) for attr in self.schema.attributes])
        return Relation(schema, self._rows)

    def as_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by unqualified attribute name."""
        names = self.schema.attribute_names
        return [dict(zip(names, row, strict=True)) for row in self._rows]

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.schema == other.schema and self._rows == list(other._rows)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Relation({self.name!r}, arity={self.arity}, rows={len(self)})"
