"""Columnar and factorized building blocks of the session-setup pipeline.

Building an inference session used to be row-at-a-time: the cross product was
materialised as one Python tuple per candidate, and every per-tuple property
(the equality type in particular) was derived by scanning those tuples one by
one.  This module provides the succinct representations that replace it:

* :class:`ValueCodec` — interns attribute values into integer *equality
  codes* with Python ``==`` semantics, so that "do these two cells hold equal
  values?" becomes an integer comparison over code arrays instead of an
  object comparison per row.  Codes are only comparable within the codec that
  produced them; ``None`` (and NaN) get codes that never match anything.
* :class:`ProductFactorization` — the factorised form of an unsampled cross
  product R₁ × … × Rₖ: the base relations' rows plus mixed-radix arithmetic
  mapping a flat ``tuple_id`` to one row index per relation.  A candidate row
  is *reconstructed on demand* instead of being stored.
* :class:`FactorGrouping` / :func:`group_product` — group each base
  relation's rows by the code vector of a chosen column subset.  Properties
  that only depend on those columns (equality types, join-query selection)
  are then computed once per *combination of groups* and multiplied out by
  group cardinalities, never per candidate tuple — the factorised evaluation
  idea of FDB-style factorised databases.
* :func:`combo_equalities` / :func:`columnar_equality_masks` — the two
  evaluation kernels built on top: per-group-combination equality bitmasks
  for factorised tables, and per-atom tight loops over code arrays for flat
  (already materialised or sampled) tables.

Everything here is value-agnostic plumbing; the equality-type semantics live
in :mod:`repro.core.equality_types`, which consumes these helpers.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator, Mapping, Sequence

try:  # Optional fast path; every consumer has an exact pure-Python fallback.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

Row = tuple


def _numpy_on() -> bool:
    """Whether the numpy fast paths are enabled for this call.

    Defers to the kernel backend switch (:mod:`repro.core.kernels`) so that
    ``REPRO_KERNEL_BACKEND`` / ``use_backend`` turn *all* array fast paths on
    and off together; imported lazily to keep this module import-cycle-free.
    """
    if _np is None:
        return False
    from ..core.kernels import numpy_enabled

    return numpy_enabled()

#: Equality code of ``None`` cells.  Negative codes never satisfy an equality
#: (``None`` and NaN never compare equal to anything, themselves included).
NULL_CODE = -1


class UnencodableValue(TypeError):
    """A value cannot be interned (unhashable); callers fall back to rows."""


class ValueCodec:
    """Interns values into integer equality codes (Python ``==`` semantics).

    Two values receive the same non-negative code exactly when they compare
    equal (so ``1``, ``1.0`` and ``True`` share a code, as dict interning
    follows ``hash``/``==``).  ``None`` maps to :data:`NULL_CODE` and NaN
    cells each get a fresh negative code; consumers must therefore treat any
    negative code as "never equal".  Codes are meaningless across codecs.
    """

    __slots__ = ("_codes", "_next_unmatchable")

    def __init__(self) -> None:
        self._codes: dict[object, int] = {}
        self._next_unmatchable = NULL_CODE - 1

    def code(self, value: object) -> int:
        """The equality code of one value."""
        if value is None:
            return NULL_CODE
        try:
            unmatchable = bool(value != value)  # NaN is the only standard case
        except Exception:  # exotic __eq__; treat as an ordinary value
            unmatchable = False
        if unmatchable:
            fresh = self._next_unmatchable
            self._next_unmatchable -= 1
            return fresh
        try:
            code = self._codes.get(value)
        except TypeError as exc:
            raise UnencodableValue(
                f"cannot intern unhashable value of type {type(value).__name__!r}"
            ) from exc
        if code is None:
            code = len(self._codes)
            self._codes[value] = code
        return code

    def encode(self, values: Sequence[object]) -> list[int]:
        """The equality codes of a column of values."""
        code = self.code
        return [code(value) for value in values]


def columnar_equality_masks(
    codes: Mapping[int, Sequence[int]],
    num_rows: int,
    pairs: Sequence[tuple[int, int]],
) -> list[int]:
    """Per-row equality bitmasks, computed column-pair-wise over code arrays.

    ``codes`` maps each referenced column position to its equality-code
    array (all produced by one shared codec, e.g. via
    ``CandidateTable.equality_codes``).  Bit ``i`` of row ``r``'s mask is set
    when the two columns of ``pairs[i]`` hold equal non-null values on ``r``
    — one tight integer loop per pair, the columnar replacement of the
    per-row, per-atom object comparisons.
    """
    if _numpy_on() and len(pairs) < 63:
        arrays = {
            column: _np.asarray(column_codes, dtype=_np.int64)
            for column, column_codes in codes.items()
        }
        masks_arr = _np.zeros(num_rows, dtype=_np.int64)
        bit = 1
        for left, right in pairs:
            left_codes = arrays[left]
            right_codes = arrays[right]
            masks_arr[(left_codes >= 0) & (left_codes == right_codes)] |= _np.int64(bit)
            bit <<= 1
        return masks_arr.tolist()
    masks = [0] * num_rows
    bit = 1
    for left, right in pairs:
        left_codes = codes[left]
        right_codes = codes[right]
        for tuple_id, (a, b) in enumerate(zip(left_codes, right_codes, strict=True)):
            if a >= 0 and a == b:
                masks[tuple_id] |= bit
        bit <<= 1
    return masks


class ProductFactorization:
    """The factorised form of an unsampled cross product R₁ × … × Rₖ.

    Holds the base relations' rows only; the flat candidate table is defined
    implicitly, with ``tuple_id`` ↔ per-relation row indices related by
    mixed-radix arithmetic (relation ``i`` has stride ``Π_{j>i} |Rⱼ|``, the
    ``itertools.product`` row order of the eager implementation).
    """

    __slots__ = (
        "factor_rows",
        "widths",
        "sizes",
        "offsets",
        "strides",
        "num_rows",
        "_column_locator",
    )

    def __init__(
        self,
        factor_rows: Sequence[Sequence[Row]],
        widths: Sequence[int],
    ) -> None:
        self.factor_rows: tuple[tuple[Row, ...], ...] = tuple(
            tuple(rows) for rows in factor_rows
        )
        self.widths = tuple(widths)
        self.sizes = tuple(len(rows) for rows in self.factor_rows)
        offsets: list[int] = []
        total = 0
        for width in self.widths:
            offsets.append(total)
            total += width
        self.offsets = tuple(offsets)
        strides = [1] * len(self.sizes)
        for index in range(len(self.sizes) - 2, -1, -1):
            strides[index] = strides[index + 1] * self.sizes[index + 1]
        self.strides = tuple(strides)
        num_rows = 1
        for size in self.sizes:
            num_rows *= size
        self.num_rows = num_rows
        locator: list[tuple[int, int]] = []
        for factor, width in enumerate(self.widths):
            locator.extend((factor, local) for local in range(width))
        self._column_locator = tuple(locator)

    @property
    def num_factors(self) -> int:
        """Number of base relations in the product."""
        return len(self.factor_rows)

    def locate(self, column: int) -> tuple[int, int]:
        """``(factor, local column)`` of a flat column position."""
        return self._column_locator[column]

    def digits(self, tuple_id: int) -> tuple[int, ...]:
        """Mixed-radix decoding: one base-relation row index per factor."""
        digits: list[int] = []
        remainder = tuple_id
        for stride in self.strides:
            digit, remainder = divmod(remainder, stride)
            digits.append(digit)
        return tuple(digits)

    def tuple_id_of(self, digits: Sequence[int]) -> int:
        """Mixed-radix encoding: the flat ``tuple_id`` of per-factor indices."""
        return sum(digit * stride for digit, stride in zip(digits, self.strides, strict=True))

    def row(self, tuple_id: int) -> Row:
        """Reconstruct one candidate row on demand (no materialisation)."""
        parts: list[Row] = []
        remainder = tuple_id
        for rows, stride in zip(self.factor_rows, self.strides, strict=True):
            digit, remainder = divmod(remainder, stride)
            parts.append(rows[digit])
        return tuple(itertools.chain.from_iterable(parts))

    def iter_rows(self) -> Iterator[Row]:
        """All candidate rows in ``tuple_id`` order, streamed."""
        for combo in itertools.product(*self.factor_rows):
            yield tuple(itertools.chain.from_iterable(combo))

    def column_values(self, column: int) -> list[object]:
        """One flat column of the product, built by tile/repeat (no rows)."""
        factor, local = self.locate(column)
        base = [row[local] for row in self.factor_rows[factor]]
        repeat = self.strides[factor]
        size = self.sizes[factor]
        tiles = self.num_rows // (repeat * size) if size else 0
        values: list[object] = []
        for _ in range(tiles):
            for value in base:
                values.extend(itertools.repeat(value, repeat))
        return values


class FactorGrouping:
    """Per-factor grouping of base rows by the codes of selected columns.

    ``profiles[f][g]`` is the code vector shared by group ``g`` of factor
    ``f``; ``members[f][g]`` lists its base-row indices (ascending) and
    ``row_gids[f][r]`` maps base row ``r`` to its group.  ``slot_of`` locates
    a flat column inside the profiles: ``slot_of[column] = (factor, slot)``.
    Codes were produced by one shared codec, so they compare across factors.
    """

    __slots__ = (
        "factorization",
        "profiles",
        "members",
        "row_gids",
        "slot_of",
        "_member_arrays",
    )

    def __init__(
        self,
        factorization: ProductFactorization,
        profiles: list[list[tuple[int, ...]]],
        members: list[list[list[int]]],
        row_gids: list[list[int]],
        slot_of: dict[int, tuple[int, int]],
    ) -> None:
        self.factorization = factorization
        self.profiles = profiles
        self.members = members
        self.row_gids = row_gids
        self.slot_of = slot_of
        self._member_arrays: dict[tuple[int, int], "_np.ndarray"] | None = None

    def group_counts(self) -> list[list[int]]:
        """Group cardinalities, per factor."""
        return [[len(member) for member in factor] for factor in self.members]

    def combo_of(self, tuple_id: int) -> tuple[int, ...]:
        """The group combination a candidate tuple belongs to."""
        digits = self.factorization.digits(tuple_id)
        return tuple(
            self.row_gids[factor][digit] for factor, digit in enumerate(digits)
        )

    def ids_of_combo(self, combo: Sequence[int]) -> list[int]:
        """The candidate tuple ids of one group combination (ascending)."""
        if _numpy_on() and self.factorization.num_rows < (1 << 62):
            return self.combo_id_array(combo).tolist()
        member_lists = [self.members[factor][gid] for factor, gid in enumerate(combo)]
        tuple_id_of = self.factorization.tuple_id_of
        return [tuple_id_of(digits) for digits in itertools.product(*member_lists)]

    def ids_of_combos(self, combos: Sequence[Sequence[int]]) -> list[int]:
        """The candidate ids of many combinations, merged ascending.

        The bulk form of :meth:`ids_of_combo` for types that span very many
        combinations (large grids put most types on ~one candidate per
        combination, where per-combination dispatch — numpy array setup in
        particular — dominates the actual id arithmetic).  One tight
        mixed-radix loop; in process-parallel mode the combination list is
        chunked across the worker pool (the propagation side of the 10⁶-
        candidate hot path) with a bit-identical merged result.
        """
        from ..core import parallel as _parallel

        if len(combos) >= _MIN_FAN_COMBOS and _parallel.parallel_mode() == "process":
            executor = _parallel.get_executor("process")
            bounds = _parallel.even_ranges(len(combos), executor.max_workers * 2)
            payloads = [
                {
                    "members": self.members,
                    "strides": self.factorization.strides,
                    "combos": combos[start:stop],
                }
                for start, stop in bounds
            ]
            merged: list[int] = []
            for chunk in executor.map(combo_ids_chunk, payloads):
                merged.extend(chunk)
            merged.sort()
            return merged
        return combo_ids_chunk(
            {
                "members": self.members,
                "strides": self.factorization.strides,
                "combos": combos,
            }
        )

    def min_id_of_combos(self, combos: Sequence[Sequence[int]]) -> int | None:
        """The smallest candidate id across many combinations.

        Each combination's smallest id uses the first (= smallest) member of
        every factor group, so the scan is O(#combinations × #factors) with
        nothing materialised; in process-parallel mode large combination
        lists are chunked across the pool and the chunk minima are merged.
        """
        from ..core import parallel as _parallel

        if not combos:
            return None
        first_members = [[group[0] for group in factor] for factor in self.members]
        if len(combos) >= _MIN_FAN_COMBOS and _parallel.parallel_mode() == "process":
            executor = _parallel.get_executor("process")
            bounds = _parallel.even_ranges(len(combos), executor.max_workers * 2)
            payloads = [
                {
                    "first_members": first_members,
                    "strides": self.factorization.strides,
                    "combos": combos[start:stop],
                }
                for start, stop in bounds
            ]
            minima = [
                chunk_min
                for chunk_min in executor.map(combo_min_id_chunk, payloads)
                if chunk_min is not None
            ]
            return min(minima) if minima else None
        return combo_min_id_chunk(
            {
                "first_members": first_members,
                "strides": self.factorization.strides,
                "combos": combos,
            }
        )

    def _member_array(self, factor: int, gid: int) -> _np.ndarray:
        """One group's base-row indices as a cached int64 vector."""
        if self._member_arrays is None:
            self._member_arrays = {}
        key = (factor, gid)
        cached = self._member_arrays.get(key)
        if cached is None:
            cached = _np.asarray(self.members[factor][gid], dtype=_np.int64)
            self._member_arrays[key] = cached
        return cached

    def combo_id_array(self, combo: Sequence[int]) -> _np.ndarray:
        """The candidate tuple ids of one combination, as an ascending vector.

        Mixed-radix broadcast: each factor contributes ``member * stride``
        terms, and because every partial sum is strictly below the preceding
        factor's stride, lexicographic combination order coincides with
        numeric tuple-id order — the sums come out ascending without a sort.
        """
        strides = self.factorization.strides
        ids: _np.ndarray | None = None
        for factor, gid in enumerate(combo):
            term = self._member_array(factor, gid) * strides[factor]
            ids = term if ids is None else (ids[:, None] + term[None, :]).reshape(-1)
        assert ids is not None  # products have at least one factor
        return ids


def group_product(
    factorization: ProductFactorization, columns: Sequence[int]
) -> FactorGrouping:
    """Group every factor's rows by the code vectors of the given flat columns.

    The factorised analogue of "project each relation on the columns any atom
    touches and deduplicate": one pass per base relation, O(Σ|Rᵢ|), after
    which per-candidate properties of those columns collapse to per-group-
    combination properties.

    Raises :class:`UnencodableValue` when a cell cannot be interned.
    """
    codec = ValueCodec()
    per_factor: list[list[int]] = [[] for _ in range(factorization.num_factors)]
    for column in columns:
        factor, local = factorization.locate(column)
        per_factor[factor].append(local)
    slot_of: dict[int, tuple[int, int]] = {}
    for column in columns:
        factor, local = factorization.locate(column)
        slot_of[column] = (factor, per_factor[factor].index(local))
    profiles: list[list[tuple[int, ...]]] = []
    members: list[list[list[int]]] = []
    row_gids: list[list[int]] = []
    for factor, locals_used in enumerate(per_factor):
        rows = factorization.factor_rows[factor]
        if locals_used:
            code_columns = [
                codec.encode([row[local] for row in rows]) for local in locals_used
            ]
            keys: Sequence[tuple[int, ...]] = list(zip(*code_columns, strict=True))
        else:
            # No atom touches this factor: all its rows are interchangeable.
            keys = [()] * len(rows)
        gid_of: dict[tuple[int, ...], int] = {}
        factor_profiles: list[tuple[int, ...]] = []
        factor_members: list[list[int]] = []
        factor_gids: list[int] = []
        for row_index, key in enumerate(keys):
            gid = gid_of.get(key)
            if gid is None:
                gid = len(factor_profiles)
                gid_of[key] = gid
                factor_profiles.append(key)
                factor_members.append([])
            factor_members[gid].append(row_index)
            factor_gids.append(gid)
        profiles.append(factor_profiles)
        members.append(factor_members)
        row_gids.append(factor_gids)
    return FactorGrouping(factorization, profiles, members, row_gids, slot_of)


def combo_equalities(
    grouping: FactorGrouping, pairs: Sequence[tuple[int, int]]
) -> Iterator[tuple[tuple[int, ...], int, int]]:
    """Yield ``(combo, mask, count)`` for every combination of factor groups.

    ``mask`` has bit ``i`` set when the columns of ``pairs[i]`` hold equal
    non-null values on every candidate tuple of the combination, and
    ``count`` is the number of such tuples (the product of the group
    cardinalities).  Total work is O(#combinations × #pairs) — independent of
    the number of candidate tuples.
    """
    slot_of = grouping.slot_of
    pair_slots = [(slot_of[left], slot_of[right]) for left, right in pairs]
    profiles = grouping.profiles
    counts = grouping.group_counts()
    for combo in itertools.product(*(range(len(factor)) for factor in profiles)):
        mask = 0
        bit = 1
        for (left_factor, left_slot), (right_factor, right_slot) in pair_slots:
            code = profiles[left_factor][combo[left_factor]][left_slot]
            if code >= 0 and code == profiles[right_factor][combo[right_factor]][right_slot]:
                mask |= bit
            bit <<= 1
        count = 1
        for factor, gid in enumerate(combo):
            count *= counts[factor][gid]
        yield combo, mask, count


# --------------------------------------------------------------------- #
# Parallel histogram construction
# --------------------------------------------------------------------- #
#: Combination grids below this size stay serial: fanning out costs payload
#: pickling plus (on a cold pool) worker startup, which only pays for itself
#: once the per-combination work dominates.
_MIN_PARALLEL_COMBOS = 4096


class ComboGrid:
    """Flat row-major storage of per-combination masks, indexed by combo.

    The parallel histogram's replacement for the ``combo -> mask`` dict: the
    worker chunks return flat mask lists in ``itertools.product`` order, and
    concatenating them in chunk order *is* the row-major grid — no per-combo
    dict insertions on the parent.  ``grid[combo]`` resolves through the same
    mixed-radix arithmetic the serial product order defines, and
    :meth:`items` re-enumerates ``(combo, mask)`` pairs in exactly that
    order, so consumers observe the dict path's iteration order verbatim.
    """

    __slots__ = ("flat", "shape", "strides")

    def __init__(self, flat: list[int], shape: Sequence[int]) -> None:
        self.flat = flat
        self.shape = tuple(shape)
        strides = [1] * len(self.shape)
        for index in range(len(self.shape) - 2, -1, -1):
            strides[index] = strides[index + 1] * self.shape[index + 1]
        self.strides = tuple(strides)

    def __len__(self) -> int:
        return len(self.flat)

    def __getitem__(self, combo: Sequence[int]) -> int:
        flat_index = 0
        for gid, stride in zip(combo, self.strides, strict=True):
            flat_index += gid * stride
        return self.flat[flat_index]

    def items(self) -> Iterator[tuple[tuple[int, ...], int]]:
        """``(combo, mask)`` pairs in row-major (= serial product) order."""
        combos = itertools.product(*(range(size) for size in self.shape))
        return zip(combos, self.flat, strict=True)


def combo_histogram_chunk(payload: dict) -> tuple[list[int], list[tuple[int, int]]]:
    """Worker task: masks + partial type histogram for one grid slice.

    The slice is a contiguous range of the *first* factor's groups — the
    slowest-varying product digit — so the returned flat mask list is a
    contiguous row-major block of the full grid.  The partial histogram
    lists ``(mask, count)`` in first-appearance order within the slice;
    merging the slices in order therefore reproduces the serial loop's
    first-appearance (dict insertion) order exactly.
    """
    profiles = payload["profiles"]
    pair_slots = payload["pair_slots"]
    counts = payload["counts"]
    start, stop = payload["first_range"]
    rest = [range(len(factor)) for factor in profiles[1:]]
    masks: list[int] = []
    sizes: dict[int, int] = {}
    for combo in itertools.product(range(start, stop), *rest):
        mask = 0
        bit = 1
        for (left_factor, left_slot), (right_factor, right_slot) in pair_slots:
            code = profiles[left_factor][combo[left_factor]][left_slot]
            if code >= 0 and code == profiles[right_factor][combo[right_factor]][right_slot]:
                mask |= bit
            bit <<= 1
        count = 1
        for factor, gid in enumerate(combo):
            count *= counts[factor][gid]
        masks.append(mask)
        sizes[mask] = sizes.get(mask, 0) + count
    return masks, list(sizes.items())


#: Types spanning fewer combinations than this materialise their ids without
#: the pool even in process mode: each payload ships the grouping's full
#: member lists, which only pays for itself once the combination loop
#: dominates.
_MIN_FAN_COMBOS = 16384


def combo_ids_chunk(payload: dict) -> list[int]:
    """Worker task: the candidate ids of a slice of one type's combinations.

    Pure mixed-radix arithmetic over the shipped member lists, with no
    per-combination dispatch.  Each chunk comes back sorted, so the parent's
    final sort over the concatenated chunks runs on pre-sorted runs.
    """
    members = payload["members"]
    strides = payload["strides"]
    ids: list[int] = []
    append = ids.append
    for combo in payload["combos"]:
        member_lists = [members[factor][gid] for factor, gid in enumerate(combo)]
        for digits in itertools.product(*member_lists):
            tuple_id = 0
            for digit, stride in zip(digits, strides, strict=True):
                tuple_id += digit * stride
            append(tuple_id)
    ids.sort()
    return ids


def combo_min_id_chunk(payload: dict) -> int | None:
    """Worker task: the smallest candidate id of a slice of combinations.

    ``first_members[f][g]`` is the smallest base-row index of group ``g`` of
    factor ``f`` — each combination's minimum id combines exactly those, so
    the chunk reduces to one mixed-radix min scan.
    """
    first_members = payload["first_members"]
    strides = payload["strides"]
    best: int | None = None
    for combo in payload["combos"]:
        tuple_id = 0
        for factor, gid in enumerate(combo):
            tuple_id += first_members[factor][gid] * strides[factor]
        if best is None or tuple_id < best:
            best = tuple_id
    return best


def build_combo_histogram(
    grouping: FactorGrouping, pairs: Sequence[tuple[int, int]]
) -> tuple[ComboGrid, dict[int, int]] | None:
    """The factorized type histogram, fanned across the worker pool.

    Returns ``(combo_masks, sizes)`` — a :class:`ComboGrid` over the
    combination grid plus the distinct-type histogram in the serial loop's
    first-appearance order — or ``None`` when the parallel mode is off, the
    grid is too small to pay for fan-out, or the first factor cannot be
    chunked; the caller then runs the serial :func:`combo_equalities` loop.
    """
    from ..core import parallel as _parallel

    mode = _parallel.parallel_mode()
    if mode == "serial":
        return None
    profiles = grouping.profiles
    shape = [len(factor) for factor in profiles]
    total = math.prod(shape) if shape else 0
    if total < _MIN_PARALLEL_COMBOS or shape[0] < 2:
        return None
    slot_of = grouping.slot_of
    pair_slots = [(slot_of[left], slot_of[right]) for left, right in pairs]
    counts = grouping.group_counts()
    executor = _parallel.get_executor(mode)
    chunks = _parallel.even_ranges(shape[0], min(shape[0], executor.max_workers * 2))
    payloads = [
        {
            "profiles": profiles,
            "pair_slots": pair_slots,
            "counts": counts,
            "first_range": chunk,
        }
        for chunk in chunks
    ]
    flat: list[int] = []
    sizes: dict[int, int] = {}
    for chunk_masks, chunk_sizes in executor.map(combo_histogram_chunk, payloads):
        flat.extend(chunk_masks)
        for mask, count in chunk_sizes:
            sizes[mask] = sizes.get(mask, 0) + count
    return ComboGrid(flat, shape), sizes
