"""CSV import/export for relations and candidate tables.

The paper's motivating user has "raw data coming from different data sources";
CSV files are the lingua franca for such data, so the substrate can load a
relation per CSV file (with automatic type detection) and write inference
inputs/outputs back out for inspection.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Sequence
from pathlib import Path

from ..exceptions import SchemaError
from .candidate import CandidateTable
from .relation import Relation
from .types import detect_and_coerce_column, parse_cell

PathLike = str | Path


def read_relation_csv(
    path: PathLike,
    name: str | None = None,
    delimiter: str = ",",
    null_token: str = "",
) -> Relation:
    """Load a relation from a CSV file with a header row.

    Column types are detected automatically (integer, float, boolean, date,
    falling back to text); cells equal to ``null_token`` become ``None``.
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        return read_relation_csv_text(handle.read(), name or path.stem, delimiter, null_token)


def read_relation_csv_text(
    text: str,
    name: str,
    delimiter: str = ",",
    null_token: str = "",
) -> Relation:
    """Load a relation from CSV text (header row required)."""
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows = list(reader)
    if not rows:
        raise SchemaError(f"CSV for relation {name!r} is empty (missing header row)")
    header = [column.strip() for column in rows[0]]
    raw_rows = [
        [parse_cell(cell, null_token) for cell in row]
        for row in rows[1:]
        if any(cell.strip() for cell in row)
    ]
    for row in raw_rows:
        if len(row) != len(header):
            raise SchemaError(
                f"CSV row has {len(row)} cells but header has {len(header)} columns"
            )
    columns = []
    types = []
    for pos in range(len(header)):
        dtype, coerced = detect_and_coerce_column(row[pos] for row in raw_rows)
        types.append(dtype)
        columns.append(coerced)
    typed_rows = [tuple(column[i] for column in columns) for i in range(len(raw_rows))]
    return Relation.build(name, header, typed_rows, data_types=types)


def write_relation_csv(
    relation: Relation,
    path: PathLike,
    delimiter: str = ",",
    null_token: str = "",
) -> None:
    """Write a relation to a CSV file with a header row."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(relation.schema.attribute_names)
        for row in relation:
            writer.writerow([null_token if value is None else value for value in row])


def write_candidate_table_csv(
    table: CandidateTable,
    path: PathLike,
    labels: dict[int, str] | None = None,
    delimiter: str = ",",
    null_token: str = "",
) -> None:
    """Write a candidate table (optionally with per-tuple labels) to CSV.

    When ``labels`` is given a leading ``label`` column is emitted containing
    the provided marker for labeled tuples and an empty cell otherwise — the
    textual analogue of the +/− column in the paper's Figure 1.
    """
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        header: Sequence[str] = table.attribute_names
        if labels is not None:
            header = ("label", *header)
        writer.writerow(header)
        for tuple_id, row in enumerate(table):
            values = [null_token if value is None else value for value in row]
            if labels is not None:
                values = [labels.get(tuple_id, "")] + values
            writer.writerow(values)


def read_candidate_table_csv(
    path: PathLike,
    name: str | None = None,
    delimiter: str = ",",
    null_token: str = "",
) -> CandidateTable:
    """Load a flat candidate table from a CSV file with a header row."""
    relation = read_relation_csv(path, name=name, delimiter=delimiter, null_token=null_token)
    return CandidateTable.from_relation(relation, name=name or relation.name)
