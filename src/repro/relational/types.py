"""Data types for relation attributes and type inference over raw values.

The relational substrate is deliberately small: it supports the handful of
scalar types needed to represent the paper's datasets (denormalised travel
tables, Set-game cards, synthetic integers, TPC-H-like columns) and to decide
which pairs of attributes are *type compatible* — only compatible pairs give
rise to candidate equality atoms in the atom universe.
"""

from __future__ import annotations

import datetime
import enum
import math
from collections.abc import Iterable, Sequence

from ..exceptions import DataTypeError


class DataType(enum.Enum):
    """Scalar data types supported by the relational substrate."""

    TEXT = "text"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    DATE = "date"
    NULL = "null"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Groups of types whose values may meaningfully be compared for equality.
_COMPATIBILITY_GROUPS = (
    frozenset({DataType.INTEGER, DataType.FLOAT}),
    frozenset({DataType.TEXT}),
    frozenset({DataType.BOOLEAN}),
    frozenset({DataType.DATE}),
)


def infer_type(value: object) -> DataType:
    """Infer the :class:`DataType` of a single Python value.

    ``None`` maps to :attr:`DataType.NULL`; unsupported values raise
    :class:`~repro.exceptions.DataTypeError`.
    """
    if value is None:
        return DataType.NULL
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.TEXT
    if isinstance(value, datetime.date):
        return DataType.DATE
    raise DataTypeError(f"unsupported value type: {type(value).__name__!r}")


def _resolve_column_type(seen: set[DataType]) -> DataType:
    """Reduce the set of (non-null) types seen in a column to one type."""
    if not seen:
        return DataType.NULL
    if len(seen) == 1:
        return next(iter(seen))
    if seen <= {DataType.INTEGER, DataType.FLOAT}:
        return DataType.FLOAT
    names = ", ".join(sorted(t.value for t in seen))
    raise DataTypeError(f"column mixes incompatible types: {names}")


def infer_column_type(values: Iterable[object]) -> DataType:
    """Infer the common type of a column of values.

    Nulls are ignored; an all-null (or empty) column is :attr:`DataType.NULL`.
    Mixed integer/float columns are widened to :attr:`DataType.FLOAT`.  Any
    other mix raises :class:`~repro.exceptions.DataTypeError`.
    """
    seen: set[DataType] = set()
    for value in values:
        inferred = infer_type(value)
        if inferred is not DataType.NULL:
            seen.add(inferred)
    return _resolve_column_type(seen)


def infer_row_types(rows: Iterable[Sequence[object]], num_columns: int) -> list[DataType]:
    """Infer every column's type in a *single* pass over row-major data.

    Equivalent to calling :func:`infer_column_type` once per column, but the
    rows are only traversed once — the difference matters when the rows are
    large or reconstructed on demand.
    """
    seen: list[set[DataType]] = [set() for _ in range(num_columns)]
    for row in rows:
        for position, value in enumerate(row):
            inferred = infer_type(value)
            if inferred is not DataType.NULL:
                seen[position].add(inferred)
    return [_resolve_column_type(column_seen) for column_seen in seen]


def are_compatible(left: DataType, right: DataType) -> bool:
    """Return ``True`` when values of the two types can be equality-joined.

    ``NULL`` columns are compatible with everything: an all-null column
    carries no type evidence, and equality on nulls never holds anyway.
    """
    if left is DataType.NULL or right is DataType.NULL:
        return True
    if left is right:
        return True
    return any(left in group and right in group for group in _COMPATIBILITY_GROUPS)


def coerce(value: object, target: DataType) -> object:
    """Coerce ``value`` to ``target`` or raise :class:`DataTypeError`.

    Used by CSV loading, where every raw cell is a string.
    """
    if value is None:
        return None
    if target is DataType.NULL:
        return value
    if target is DataType.TEXT:
        return value if isinstance(value, str) else str(value)
    if target is DataType.INTEGER:
        try:
            return int(value)  # type: ignore[arg-type]
        except (TypeError, ValueError) as exc:
            raise DataTypeError(f"cannot coerce {value!r} to integer") from exc
    if target is DataType.FLOAT:
        try:
            result = float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError) as exc:
            raise DataTypeError(f"cannot coerce {value!r} to float") from exc
        if math.isnan(result):
            raise DataTypeError("NaN is not a valid float value")
        return result
    if target is DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in {"true", "t", "1", "yes"}:
                return True
            if lowered in {"false", "f", "0", "no"}:
                return False
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        raise DataTypeError(f"cannot coerce {value!r} to boolean")
    if target is DataType.DATE:
        if isinstance(value, datetime.datetime):
            return value.date()
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            try:
                return datetime.date.fromisoformat(value.strip())
            except ValueError as exc:
                raise DataTypeError(f"cannot coerce {value!r} to date") from exc
        raise DataTypeError(f"cannot coerce {value!r} to date")
    raise DataTypeError(f"unknown target type: {target!r}")  # pragma: no cover


def parse_cell(raw: str, null_token: str = "") -> str | None:
    """Turn a raw CSV cell into ``None`` when it equals the null token."""
    if raw == null_token:
        return None
    return raw


def detect_and_coerce_column(
    raw_values: Iterable[str | None],
) -> tuple[DataType, list[object]]:
    """Detect the best type of a column of raw strings and coerce it.

    Tries, in order: integer, float, boolean, date, and falls back to text.
    Returns the detected type and the coerced values (``None`` preserved).
    """
    values = list(raw_values)
    for candidate in (DataType.INTEGER, DataType.FLOAT, DataType.BOOLEAN, DataType.DATE):
        try:
            coerced = [None if v is None else coerce(v, candidate) for v in values]
        except DataTypeError:
            continue
        return candidate, coerced
    coerced = [None if v is None else str(v) for v in values]
    return DataType.TEXT, coerced
