"""Relation and database schemas.

A :class:`RelationSchema` is an ordered list of named, typed attributes; a
:class:`DatabaseSchema` is a named collection of relation schemas.  Attribute
names are qualified as ``"Relation.attr"`` whenever they participate in a
multi-relation candidate table, which is how the inference core refers to
columns unambiguously.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from ..exceptions import SchemaError, UnknownAttributeError, UnknownRelationError
from .types import DataType


@dataclass(frozen=True)
class Attribute:
    """A single named, typed column.

    Parameters
    ----------
    name:
        The attribute name.  May be plain (``"City"``) or qualified
        (``"Hotels.City"``).
    data_type:
        The scalar :class:`~repro.relational.types.DataType` of the column.
    relation:
        Name of the base relation this attribute comes from, when known.
        Attributes of flat, denormalised tables (such as the paper's Figure 1)
        may have ``relation=None``.
    """

    name: str
    data_type: DataType = DataType.TEXT
    relation: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")

    @property
    def qualified_name(self) -> str:
        """The globally unique name of the attribute.

        ``"Relation.attr"`` when a relation is known and the name is not
        already qualified, otherwise the plain name.
        """
        if self.relation and "." not in self.name:
            return f"{self.relation}.{self.name}"
        return self.name

    @property
    def short_name(self) -> str:
        """The unqualified column name."""
        return self.name.rsplit(".", 1)[-1]

    def qualify(self, relation: str) -> Attribute:
        """Return a copy of this attribute bound to ``relation``."""
        return Attribute(name=self.short_name, data_type=self.data_type, relation=relation)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.qualified_name}:{self.data_type.value}"


class RelationSchema:
    """An ordered collection of attributes describing one relation."""

    def __init__(self, name: str, attributes: Iterable[Attribute]) -> None:
        if not name:
            raise SchemaError("relation name must be non-empty")
        self.name = name
        self.attributes: tuple[Attribute, ...] = tuple(
            attr if attr.relation == name else attr.qualify(name) for attr in attributes
        )
        if not self.attributes:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        names = [attr.short_name for attr in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"relation {name!r} has duplicate attribute names")
        self._index = {attr.short_name: pos for pos, attr in enumerate(self.attributes)}

    @classmethod
    def from_names(
        cls,
        name: str,
        attribute_names: Iterable[str],
        data_type: DataType = DataType.TEXT,
    ) -> RelationSchema:
        """Build a schema where every attribute has the same ``data_type``."""
        return cls(name, [Attribute(attr, data_type) for attr in attribute_names])

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Unqualified attribute names, in schema order."""
        return tuple(attr.short_name for attr in self.attributes)

    @property
    def qualified_names(self) -> tuple[str, ...]:
        """Qualified attribute names (``Relation.attr``), in schema order."""
        return tuple(attr.qualified_name for attr in self.attributes)

    def position_of(self, attribute_name: str) -> int:
        """Index of an attribute by plain or qualified name."""
        short = attribute_name.rsplit(".", 1)[-1]
        if "." in attribute_name:
            relation = attribute_name.rsplit(".", 1)[0]
            if relation != self.name:
                raise UnknownAttributeError(
                    f"attribute {attribute_name!r} does not belong to relation {self.name!r}"
                )
        if short not in self._index:
            raise UnknownAttributeError(
                f"relation {self.name!r} has no attribute {attribute_name!r}"
            )
        return self._index[short]

    def attribute(self, attribute_name: str) -> Attribute:
        """The :class:`Attribute` with the given plain or qualified name."""
        return self.attributes[self.position_of(attribute_name)]

    def __contains__(self, attribute_name: str) -> bool:
        try:
            self.position_of(attribute_name)
        except UnknownAttributeError:
            return False
        return True

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return self.name == other.name and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        attrs = ", ".join(str(attr) for attr in self.attributes)
        return f"RelationSchema({self.name!r}, [{attrs}])"


@dataclass
class DatabaseSchema:
    """A named collection of relation schemas."""

    relations: dict[str, RelationSchema] = field(default_factory=dict)

    @classmethod
    def of(cls, *schemas: RelationSchema) -> DatabaseSchema:
        """Build a database schema from relation schemas, rejecting duplicates."""
        database = cls()
        for schema in schemas:
            database.add(schema)
        return database

    def add(self, schema: RelationSchema) -> None:
        """Register a relation schema; duplicate names are an error."""
        if schema.name in self.relations:
            raise SchemaError(f"duplicate relation name {schema.name!r}")
        self.relations[schema.name] = schema

    def relation(self, name: str) -> RelationSchema:
        """Look up a relation schema by name."""
        try:
            return self.relations[name]
        except KeyError as exc:
            raise UnknownRelationError(f"unknown relation {name!r}") from exc

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Relation names in insertion order."""
        return tuple(self.relations)

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)
