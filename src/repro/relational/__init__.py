"""Relational substrate: schemas, relations, instances and candidate tables.

This package implements everything JIM needs below the inference layer: typed
attributes and relation schemas, in-memory relations and database instances,
the denormalised candidate table (cross product) presented to the user, CSV
and SQLite I/O, SQL rendering of inferred queries, and key/foreign-key
discovery helpers used to derive experiment goal queries.
"""

from .candidate import (
    CandidateAttribute,
    CandidateTable,
    candidate_table_to_relation,
    denormalize,
)
from .instance import DatabaseInstance
from .integrity import (
    InclusionDependency,
    RankedForeignKey,
    attribute_name_similarity,
    candidate_keys,
    foreign_key_candidates,
    join_goal_pairs,
    ranked_foreign_keys,
    unary_inclusion_dependencies,
)
from .mappings import GavMapping, as_gav_mapping
from .relation import Relation
from .schema import Attribute, DatabaseSchema, RelationSchema
from .types import DataType, are_compatible, infer_column_type, infer_type

__all__ = [
    "Attribute",
    "CandidateAttribute",
    "CandidateTable",
    "DataType",
    "DatabaseInstance",
    "DatabaseSchema",
    "GavMapping",
    "InclusionDependency",
    "RankedForeignKey",
    "Relation",
    "RelationSchema",
    "are_compatible",
    "as_gav_mapping",
    "attribute_name_similarity",
    "candidate_keys",
    "candidate_table_to_relation",
    "denormalize",
    "foreign_key_candidates",
    "infer_column_type",
    "infer_type",
    "join_goal_pairs",
    "ranked_foreign_keys",
    "unary_inclusion_dependencies",
]
