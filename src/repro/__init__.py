"""JIM — Join Inference Machine (reproduction).

A library for *interactive join query inference*: the user labels candidate
tuples as positive or negative (membership queries) and the system infers the
n-ary equi-join predicate she has in mind with a minimal number of
interactions, graying out uninformative tuples after each answer.

Reproduction of: A. Bonifati, R. Ciucanu, S. Staworko, "Interactive Join
Query Inference with JIM", PVLDB 7(13):1541–1544, 2014 (and the algorithms of
its companion research paper "Interactive Inference of Join Queries",
EDBT 2014).

Quickstart::

    from repro import (
        CandidateTable, GoalQueryOracle, JoinQuery, infer_join,
    )
    from repro.datasets import flights_hotels

    table = flights_hotels.figure1_table()
    goal = flights_hotels.query_q2()                 # what the "user" has in mind
    result = infer_join(table, GoalQueryOracle(goal), strategy="lookahead-entropy")
    print(result.query.describe())                   # To ≍ City ∧ Airline ≍ Discount
    print(result.num_interactions)                   # far fewer than 12 labels
"""

from . import baselines, core, datasets, experiments, relational, service, sessions, ui
from .core import (
    AtomScope,
    AtomUniverse,
    ConsistentQuerySpace,
    EqualityAtom,
    EqualityTypeIndex,
    Example,
    ExampleSet,
    GoalQueryOracle,
    InferenceResult,
    InferenceState,
    InferenceTrace,
    Interaction,
    JoinInferenceEngine,
    JoinQuery,
    Label,
    NoisyOracle,
    Oracle,
    PropagationResult,
    TupleStatus,
    infer_join,
)
from .core import strategies
from .exceptions import (
    AtomUniverseError,
    CandidateTableError,
    ConvergenceError,
    DataTypeError,
    ExperimentError,
    InconsistentLabelError,
    OracleError,
    ReproError,
    SchemaError,
    StrategyError,
)
from .relational import (
    Attribute,
    CandidateAttribute,
    CandidateTable,
    DatabaseInstance,
    DatabaseSchema,
    DataType,
    Relation,
    RelationSchema,
    denormalize,
)
from .service import (
    AsyncSessionService,
    ClusterSessionService,
    CrowdDispatcher,
    InferenceSession,
    SessionService,
)
from .sessions import (
    BenefitReport,
    GuidedSession,
    InteractionMode,
    ManualSession,
    SessionStatistics,
    TopKSession,
)

__version__ = "1.0.0"

__all__ = [
    "AsyncSessionService",
    "AtomScope",
    "AtomUniverse",
    "AtomUniverseError",
    "Attribute",
    "BenefitReport",
    "CandidateAttribute",
    "CandidateTable",
    "CandidateTableError",
    "ClusterSessionService",
    "ConsistentQuerySpace",
    "ConvergenceError",
    "CrowdDispatcher",
    "DataType",
    "DataTypeError",
    "DatabaseInstance",
    "DatabaseSchema",
    "EqualityAtom",
    "EqualityTypeIndex",
    "Example",
    "ExampleSet",
    "ExperimentError",
    "GoalQueryOracle",
    "GuidedSession",
    "InconsistentLabelError",
    "InferenceResult",
    "InferenceSession",
    "InferenceState",
    "InferenceTrace",
    "Interaction",
    "InteractionMode",
    "JoinInferenceEngine",
    "JoinQuery",
    "Label",
    "ManualSession",
    "NoisyOracle",
    "Oracle",
    "OracleError",
    "PropagationResult",
    "Relation",
    "RelationSchema",
    "ReproError",
    "SchemaError",
    "SessionService",
    "SessionStatistics",
    "StrategyError",
    "TopKSession",
    "TupleStatus",
    "baselines",
    "core",
    "datasets",
    "denormalize",
    "experiments",
    "infer_join",
    "relational",
    "service",
    "sessions",
    "strategies",
    "ui",
    "__version__",
]
