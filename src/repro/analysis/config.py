"""The project scoping config: which files each invariant rule applies to.

Rules carry generic default scopes; this module is the single reviewed place
where *this repository* widens or narrows them.  Two kinds of entries live
here:

* **Layer scoping** — which subtrees an invariant governs at all (the sans-IO
  rule only makes sense over the core/protocol layers; the lazy-table rule
  over ``core/``).
* **Whole-module carve-outs** — modules whose *purpose* is the thing a rule
  forbids: the CSV reader and the SQLite adapter exist to do file IO, so
  excluding them here beats peppering them with inline suppressions.  Single
  legitimate call sites inside an otherwise-governed module use inline
  ``# repro-lint: disable=CODE`` comments instead, so the exception is
  visible at the offending line.

Paths are posix globs relative to the repository root (``*`` crosses ``/``).
"""

from __future__ import annotations

from .framework import Scope

#: Per-rule scope overrides for this repository.
PROJECT_SCOPES: dict[str, Scope] = {
    # The sans-IO layers: the inference core, the relational substrate, and
    # the protocol/stepper pair.  Carve-outs: csv_io and sqlite_adapter *are*
    # the IO boundary of the relational layer (reading files/databases is
    # their contract); oracle.py's interactive console oracle suppresses its
    # two terminal calls inline instead.
    "RPR001": Scope(
        include=(
            "src/repro/core/*",
            "src/repro/relational/*",
            "src/repro/service/protocol.py",
            "src/repro/service/stepper.py",
        ),
        exclude=(
            "src/repro/relational/csv_io.py",
            "src/repro/relational/sqlite_adapter.py",
        ),
    ),
    # Lock discipline applies to the whole library; only classes that bind
    # `self._lock` in __init__ are examined, so lock-free designs (the
    # asyncio facade's event-loop single-threading) are naturally exempt.
    "RPR002": Scope(include=("src/repro/*",)),
    # Lazy-table discipline governs the inference core (strategies included).
    "RPR003": Scope(include=("src/repro/core/*",)),
    # numpy containment: kernels.py owns the unguarded import.
    "RPR004": Scope(include=("*",), exclude=("src/repro/core/kernels.py",)),
    # Seeded RNG everywhere.
    "RPR005": Scope(include=("*",)),
    # Wire-registry completeness is specific to the protocol module.
    "RPR006": Scope(include=("src/repro/service/protocol.py",)),
    # Executor discipline everywhere: the rule itself knows the one
    # sanctioned pool-creation site (core/parallel.py) and still forbids
    # module-level pool creation there.
    "RPR007": Scope(include=("*",)),
    # Transport monopoly: sockets and pipe connections are created only in
    # service/transport.py, the one seam supervision and chaos injection
    # wrap.  Everything else — the cluster supervisor included — talks
    # through FramedConnection/Listener.
    "RPR008": Scope(
        include=("src/repro/*", "benchmarks/*", "examples/*", "scripts/*"),
        exclude=("src/repro/service/transport.py",),
    ),
    # Layer architecture everywhere the import graph reaches: the layer
    # table inside the rule only governs repro.* modules, but import
    # *cycles* are flagged in any package the pass covers.
    "RPR009": Scope(include=("*",)),
    # Lock ordering is whole-program by nature; findings anchor at the
    # outer acquisition site of one edge of the cycle.
    "RPR010": Scope(include=("*",)),
    # Blocking-in-async governs every async def the pass sees — the asyncio
    # facade, the HTTP example, the async benchmarks.
    "RPR011": Scope(include=("*",)),
    # Resource lifecycle everywhere.  transport.py is *included*: its
    # factories return what they construct, which the rule accepts.
    "RPR012": Scope(include=("*",)),
}
