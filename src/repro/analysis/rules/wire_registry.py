"""RPR006 — the wire-format event registry is complete and unambiguous.

``service/protocol.py`` defines the protocol events as frozen dataclasses,
each tagged with a class-level ``type = "…"`` wire string, and decodes
incoming payloads through the ``_EVENT_CLASSES`` tag registry.  The failure
mode this rule exists for: someone adds a fifth event dataclass, the encoder
happily serialises it (``event_to_wire`` is generic), every *sender* works —
and the first *receiver* on the other side of a pipe or socket raises
``ProtocolError: unknown event type`` in production.  The registry, the
``Event`` union, and the set of tagged dataclasses must stay in lockstep.

Checked, per module in scope:

* every dataclass carrying a class-level string ``type`` attribute is listed
  in the ``_EVENT_CLASSES`` registry expression,
* every such dataclass is a member of the ``Event`` union alias,
* no two event dataclasses share a wire tag, and
* the registry does not list names that are not tagged event dataclasses
  (a stale entry after a rename).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..framework import Finding, ModuleSource, Rule, Scope, register_rule

_REGISTRY_NAME = "_EVENT_CLASSES"
_UNION_NAME = "Event"


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.id if isinstance(target, ast.Name) else getattr(target, "attr", None)
        if name == "dataclass":
            return True
    return False


def _wire_tag(node: ast.ClassDef) -> tuple[str, ast.stmt] | None:
    """``(tag, assignment)`` when the class carries ``type = "…"``."""
    for stmt in node.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "type"
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            return stmt.value.value, stmt
    return None


def _referenced_names(node: ast.AST) -> set[str]:
    return {child.id for child in ast.walk(node) if isinstance(child, ast.Name)}


@register_rule
class WireRegistryRule(Rule):
    code = "RPR006"
    name = "wire-registry-completeness"
    rationale = (
        "every tagged event dataclass is registered in _EVENT_CLASSES and the "
        "Event union, with a unique wire tag"
    )
    default_scope = Scope(include=("src/repro/service/protocol.py",))

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        events: dict[str, tuple[ast.ClassDef, str]] = {}
        registry_node: ast.Assign | ast.AnnAssign | None = None
        union_node: ast.Assign | ast.AnnAssign | None = None
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and _is_dataclass(node):
                tagged = _wire_tag(node)
                if tagged is not None:
                    events[node.name] = (node, tagged[0])
                continue
            # The registry is typically annotated (`_EVENT_CLASSES: dict[...] = {…}`).
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            else:
                continue
            if isinstance(target, ast.Name) and value is not None:
                if target.id == _REGISTRY_NAME:
                    registry_node = node
                elif target.id == _UNION_NAME:
                    union_node = node
        if not events:
            return

        if registry_node is None:
            yield Finding(
                relpath=module.relpath,
                line=1,
                code=self.code,
                message=f"module defines event dataclasses but no {_REGISTRY_NAME} "
                "codec registry",
            )
            registered: set[str] = set()
        else:
            registered = _referenced_names(registry_node.value)
        union_members = _referenced_names(union_node.value) if union_node is not None else set()

        tags_seen: dict[str, str] = {}
        for name, (class_node, tag) in events.items():
            if registry_node is not None and name not in registered:
                yield self.finding(
                    module,
                    class_node,
                    f"event dataclass {name} (tag {tag!r}) is missing from "
                    f"{_REGISTRY_NAME}; receivers will reject it as an unknown "
                    "event type",
                )
            if union_node is not None and name not in union_members:
                yield self.finding(
                    module,
                    class_node,
                    f"event dataclass {name} is missing from the {_UNION_NAME} "
                    "union alias",
                )
            if tag in tags_seen:
                yield self.finding(
                    module,
                    class_node,
                    f"wire tag {tag!r} of {name} collides with {tags_seen[tag]}; "
                    "decoding is ambiguous",
                )
            else:
                tags_seen[tag] = name

        if registry_node is not None:
            stale = registered - set(events) - {"cls"}
            for name in sorted(stale):
                yield self.finding(
                    module,
                    registry_node,
                    f"{_REGISTRY_NAME} references {name!r}, which is not a tagged "
                    "event dataclass in this module",
                )
