"""RPR009 — the import-layer DAG is law, at import time.

The repository's layering — ``exceptions`` at the bottom, the relational
substrate above it, the inference core above that, then sessions, then the
service tier, and the frontends (``experiments``, ``ui``, ``cli``) on top —
is what keeps the sans-IO core reusable and the package importable in under
a millisecond of surprise.  The invariant is about *import time*: a
module-level ``from ..service import …`` in a lower layer executes the whole
serving tier whenever the lower layer is touched, and two module-level
imports pointing at each other are an ``ImportError`` waiting for the first
reordering.

Two kinds of findings:

* a **violating edge** — a module-level (import-time) import from a layer
  that is not in the importer's allowed set.  Imports inside ``if
  TYPE_CHECKING:`` blocks and imports deferred into function bodies are the
  repository's sanctioned adapter seams for pointing *up* the stack
  (``core/engine.py`` reaches ``service.stepper`` that way) and are exempt.
* an **import cycle** — any cycle in the module-level import graph,
  reported once with the full path.  Cycles are flagged in *any* package,
  including synthetic test fixtures; the layer table only governs
  ``repro.*`` modules.

``analysis`` itself is the strictest layer: it may import nothing from the
rest of the package (not even ``exceptions``), so the linter never drags
service code — or a bug in it — into a lint run.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..framework import Finding, Scope, register_rule
from ..project import ImportEdge, ProjectModel, ProjectRule

#: layer -> layers it may import at module level.  A layer absent from the
#: table (third-party code, benchmarks, test fixtures) is unrestricted; the
#: package root (``repro/__init__``) re-exports across layers by design.
LAYER_DAG: dict[str, frozenset[str]] = {
    "exceptions": frozenset(),
    "relational": frozenset({"exceptions"}),
    "core": frozenset({"exceptions", "relational"}),
    "sessions": frozenset({"exceptions", "relational", "core"}),
    "datasets": frozenset({"exceptions", "relational", "core"}),
    "baselines": frozenset({"exceptions", "relational", "core", "sessions"}),
    "service": frozenset({"exceptions", "relational", "core", "sessions"}),
    "experiments": frozenset(
        {"exceptions", "relational", "core", "sessions", "datasets", "baselines", "service"}
    ),
    "ui": frozenset({"exceptions", "relational", "core", "sessions", "service"}),
    "cli": frozenset(
        {
            "exceptions",
            "relational",
            "core",
            "sessions",
            "datasets",
            "baselines",
            "service",
            "ui",
            "experiments",
        }
    ),
    # The analyzer imports nothing from the library it checks.
    "analysis": frozenset(),
}

_PACKAGE = "repro"


def _layer_of(module: str) -> str | None:
    """The layer a ``repro.*`` module belongs to, or ``None`` when ungoverned."""
    parts = module.split(".")
    if parts[0] != _PACKAGE:
        return None
    if len(parts) == 1:
        return None  # the package root re-exports across layers by design
    return parts[1]


@register_rule
class LayerArchitectureRule(ProjectRule):
    code = "RPR009"
    name = "layer-architecture"
    rationale = (
        "module-level imports follow the declared layer DAG "
        "(exceptions -> relational -> core -> sessions -> service -> frontends) "
        "and the import graph stays acyclic"
    )
    default_scope = Scope()

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        import_time_edges = [edge for edge in project.import_edges if edge.import_time]
        yield from self._violating_edges(import_time_edges)
        yield from self._cycles(import_time_edges)

    def _violating_edges(self, edges: list[ImportEdge]) -> Iterator[Finding]:
        seen: set[tuple[str, int, str, str]] = set()
        for edge in edges:
            key = (edge.relpath, edge.line, edge.importer, edge.target)
            if key in seen:  # one ``from x import a, b`` records an edge per name
                continue
            seen.add(key)
            importer_layer = _layer_of(edge.importer)
            target_layer = _layer_of(edge.target)
            if importer_layer is None or target_layer is None:
                continue
            if importer_layer == target_layer:
                continue
            allowed = LAYER_DAG.get(importer_layer)
            if allowed is None or target_layer in allowed:
                continue
            allowed_text = ", ".join(sorted(allowed)) if allowed else "nothing"
            yield self.finding_at(
                edge.relpath,
                edge.line,
                f"layer '{importer_layer}' must not import layer '{target_layer}' "
                f"at import time ({edge.importer} -> {edge.target}; allowed: "
                f"{allowed_text}); defer the import into the function that needs it",
            )

    def _cycles(self, edges: list[ImportEdge]) -> Iterator[Finding]:
        graph: dict[str, list[ImportEdge]] = {}
        for edge in edges:
            graph.setdefault(edge.importer, []).append(edge)
        seen_cycles: set[tuple[str, ...]] = set()
        state: dict[str, int] = {}  # 1 = on stack, 2 = done
        stack: list[ImportEdge] = []

        def visit(module: str) -> Iterator[Finding]:
            state[module] = 1
            for edge in graph.get(module, ()):
                if state.get(edge.target, 0) == 1:
                    # Found a cycle: the stack suffix from the target onward.
                    start = next(
                        i for i, e in enumerate([*stack, edge]) if e.importer == edge.target
                    )
                    cycle_edges = [*stack[start:], edge]
                    key = _canonical_cycle(tuple(e.importer for e in cycle_edges))
                    if key not in seen_cycles:
                        seen_cycles.add(key)
                        path = " -> ".join(
                            [*(e.importer for e in cycle_edges), edge.target]
                        )
                        anchor = min(cycle_edges, key=lambda e: (e.relpath, e.line))
                        yield self.finding_at(
                            anchor.relpath,
                            anchor.line,
                            f"import cycle: {path}",
                        )
                elif state.get(edge.target, 0) == 0:
                    stack.append(edge)
                    yield from visit(edge.target)
                    stack.pop()
            state[module] = 2

        for module in sorted(graph):
            if state.get(module, 0) == 0:
                yield from visit(module)


def _canonical_cycle(nodes: tuple[str, ...]) -> tuple[str, ...]:
    """Rotation-invariant key for a cycle's node sequence."""
    pivot = nodes.index(min(nodes))
    return nodes[pivot:] + nodes[:pivot]
