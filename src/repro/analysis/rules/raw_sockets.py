"""RPR008 — raw transport primitives live only in ``service/transport.py``.

The cluster's fault story (heartbeats, respawn, chaos injection, frame
limits) works because every byte between the supervisor and a worker moves
through one seam: :class:`~repro.service.transport.FramedConnection`.  A
stray ``import socket`` elsewhere — or a resurrected
``multiprocessing.Pipe()`` from the pipe-era cluster — creates a side
channel the supervisor cannot health-check, the chaos harness cannot sever,
and the frame-size limit does not govern.  This rule keeps the transport
monopoly honest.

Flagged, outside the transport module:

* imports of ``socket`` (any form, any nesting level),
* imports of ``multiprocessing.connection`` (the ``Connection`` /
  ``Client`` / ``Listener`` pipe machinery), and
* calls to ``Pipe(…)`` / ``*.Pipe(…)``.

Plain ``import multiprocessing`` stays allowed — spawning worker
*processes* is process management, not transport; their conversation still
has to flow through framed sockets.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..framework import Finding, ModuleSource, Rule, Scope, dotted_name, register_rule


def _names_connection_machinery(module_name: str) -> bool:
    root = module_name.split(".")[0]
    return root == "socket" or module_name.startswith("multiprocessing.connection")


@register_rule
class RawSocketsRule(Rule):
    code = "RPR008"
    name = "transport-monopoly"
    rationale = (
        "sockets and pipe connections are created only in service/transport.py, "
        "where supervision and fault injection can see them"
    )
    default_scope = Scope(
        include=("src/repro/*", "benchmarks/*", "examples/*", "scripts/*"),
        exclude=("src/repro/service/transport.py",),
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if _names_connection_machinery(alias.name):
                        yield self.finding(
                            module,
                            node,
                            f"import of transport primitive {alias.name!r} outside "
                            "service/transport.py; use FramedConnection/Listener",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level != 0:
                    continue
                source = node.module or ""
                if _names_connection_machinery(source):
                    yield self.finding(
                        module,
                        node,
                        f"import from transport primitive {source!r} outside "
                        "service/transport.py; use FramedConnection/Listener",
                    )
                elif source == "multiprocessing":
                    for alias in node.names:
                        if alias.name in ("Pipe", "connection"):
                            yield self.finding(
                                module,
                                node,
                                f"import of multiprocessing.{alias.name} outside "
                                "service/transport.py; worker links are framed "
                                "sockets, not pipes",
                            )
            elif isinstance(node, ast.Call):
                func = node.func
                name = func.id if isinstance(func, ast.Name) else dotted_name(func)
                if name is not None and (name == "Pipe" or name.endswith(".Pipe")):
                    yield self.finding(
                        module,
                        node,
                        f"call to {name}() outside service/transport.py; worker "
                        "links are framed sockets, not pipes",
                    )
