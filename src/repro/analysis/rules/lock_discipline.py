"""RPR002 — per-session/registry lock discipline in the serving tier.

The serving classes (:class:`~repro.service.service.SessionService`,
:class:`~repro.service.cluster.ClusterSessionService`) promise that *every*
public method may be called from any thread.  The promise rests on one
convention: shared mutable registries (the table map, the session map) are
only touched under ``with self._lock``.  A single unlocked read can return a
torn snapshot; a single unlocked write is a data race that surfaces as a
once-a-week flaky test.

This rule is a lightweight, purely syntactic race detector:

1. Per class, collect the attributes ``__init__`` binds to mutable containers
   (dict/list/set literals, comprehensions, or ``dict()``-style constructor
   calls).
2. The class is *lock-disciplined* when ``__init__`` also binds
   ``self._lock``.  Classes without a ``self._lock`` (e.g. the asyncio facade,
   which relies on event-loop single-threading plus per-session locks) are
   out of the rule's jurisdiction.
3. A collected attribute is a *shared registry* when any method other than
   ``__init__`` mutates it (subscript assignment/deletion, a mutating method
   call like ``.pop``/``.setdefault``/``.append``, or rebinding).
4. Every read or write of a shared registry inside any method must be
   dominated by a ``with``/``async with`` block whose context expression is a
   lock (``self._lock``, ``managed.lock``, … — any name/attribute ending in
   ``lock``).  Accesses outside such a block are flagged.

The rule intentionally checks *all* methods, not only public ones: private
helpers are routinely called without the registry lock held, so an unlocked
helper access is exactly as racy as an unlocked public one.  A helper that is
*documented* to require the caller to hold the lock can suppress inline with
the reason.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..framework import Finding, ModuleSource, Rule, Scope, register_rule

#: Container constructors whose result is shared mutable state.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)

#: Method calls that mutate a container in place.
_MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)


def _is_mutable_initializer(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _self_attr_target(node: ast.AST) -> str | None:
    """``"X"`` when the node is exactly ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_lock_expression(node: ast.AST) -> bool:
    """Whether a ``with`` item's context expression names a lock."""
    if isinstance(node, ast.Attribute):
        return node.attr == "lock" or node.attr.endswith("_lock")
    if isinstance(node, ast.Name):
        return node.id == "lock" or node.id.endswith("_lock")
    return False


def _function_defs(class_node: ast.ClassDef) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    return [
        child
        for child in class_node.body
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _init_bindings(class_node: ast.ClassDef) -> tuple[set[str], bool]:
    """``(mutable self attributes, has self._lock)`` from ``__init__``."""
    mutable: set[str] = set()
    has_lock = False
    for fn in _function_defs(class_node):
        if fn.name != "__init__":
            continue
        for node in ast.walk(fn):
            targets: list[ast.expr] = []
            value: ast.AST | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                attr = _self_attr_target(target)
                if attr is None:
                    continue
                if attr == "_lock":
                    has_lock = True
                elif value is not None and _is_mutable_initializer(value):
                    mutable.add(attr)
    return mutable, has_lock


class _MutationScan(ast.NodeVisitor):
    """Which of the candidate attributes are mutated outside ``__init__``."""

    def __init__(self, candidates: set[str]) -> None:
        self.candidates = candidates
        self.mutated: set[str] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
            attr = _self_attr_target(func.value)
            if attr in self.candidates:
                self.mutated.add(attr)
        self.generic_visit(node)

    def _check_target(self, target: ast.expr) -> None:
        # Rebinding self.X, or writing/deleting self.X[...] / self.X.attr.
        attr = _self_attr_target(target)
        if attr in self.candidates:
            self.mutated.add(attr)
            return
        if isinstance(target, ast.Subscript):
            attr = _self_attr_target(target.value)
            if attr in self.candidates:
                self.mutated.add(attr)


class _AccessScan(ast.NodeVisitor):
    """All accesses to the shared registries, with lock-domination tracking."""

    def __init__(self, registries: set[str]) -> None:
        self.registries = registries
        self.locked_depth = 0
        self.unlocked: list[tuple[ast.AST, str]] = []

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        holds_lock = any(_is_lock_expression(item.context_expr) for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        if holds_lock:
            self.locked_depth += 1
        for child in node.body:
            self.visit(child)
        if holds_lock:
            self.locked_depth -= 1

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr_target(node)
        if attr in self.registries and self.locked_depth == 0:
            self.unlocked.append((node, attr))
        self.generic_visit(node)


@register_rule
class LockDisciplineRule(Rule):
    code = "RPR002"
    name = "lock-discipline"
    rationale = (
        "shared mutable registries of lock-disciplined classes are only "
        "touched under 'with self._lock'"
    )
    default_scope = Scope(include=("src/repro/*",))

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module: ModuleSource, class_node: ast.ClassDef) -> Iterator[Finding]:
        mutable, has_lock = _init_bindings(class_node)
        if not has_lock or not mutable:
            return
        scan = _MutationScan(mutable)
        for fn in _function_defs(class_node):
            if fn.name != "__init__":
                scan.visit(fn)
        registries = scan.mutated
        if not registries:
            return
        for fn in _function_defs(class_node):
            if fn.name == "__init__":
                continue
            access = _AccessScan(registries)
            for stmt in fn.body:
                access.visit(stmt)
            for offender, attr in access.unlocked:
                yield self.finding(
                    module,
                    offender,
                    f"{class_node.name}.{fn.name} touches shared registry "
                    f"'self.{attr}' outside a 'with self._lock' block",
                )
