"""RPR001 — sans-IO purity of the inference core.

The engine layers (``core/``, ``relational/``) and the protocol layer
(``service/protocol.py``, ``service/stepper.py``) are *sans-IO by
construction*: they compute over in-memory tables and emit typed events, and
every transport — HTTP demo, asyncio facade, cluster pipes, CLI — lives in an
outer layer.  That is what lets one stepper implementation serve four
frontends and what keeps the hot loop benchmarkable without mocking sockets.

The rule flags, inside the sans-IO scope:

* imports of transport/IO modules (``socket``, ``http``, ``urllib``,
  ``asyncio``, ``subprocess``, ``sqlite3``, …) at any nesting level, and
* calls that talk to the outside world: ``print``/``input``/``open``/
  ``breakpoint``, ``time.sleep``, ``os.system``/``os.popen``, and
  ``sys.stdout``/``sys.stderr`` writes.

``time.perf_counter`` (and the rest of ``time``'s clocks) stays allowed — the
engine timestamps its traces.  Whole-module carve-outs (the CSV reader, the
SQLite adapter) live in :mod:`repro.analysis.config`; single legitimate call
sites (the interactive console oracle) carry inline suppressions with a
reason.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..framework import Finding, ModuleSource, Rule, Scope, dotted_name, register_rule

#: Top-level modules whose import means the file does IO or owns a transport.
BANNED_MODULES = frozenset(
    {
        "asyncio",
        "ftplib",
        "http",
        "multiprocessing",
        "requests",
        "selectors",
        "smtplib",
        "socket",
        "socketserver",
        "sqlite3",
        "ssl",
        "subprocess",
        "telnetlib",
        "urllib",
        "webbrowser",
        "wsgiref",
    }
)

#: Builtins that read from or write to the terminal / filesystem.
BANNED_BUILTINS = frozenset({"breakpoint", "input", "open", "print"})

#: Dotted calls that block, shell out, or write to process streams.
BANNED_DOTTED = frozenset(
    {
        "os.popen",
        "os.remove",
        "os.system",
        "os.unlink",
        "sys.stderr.flush",
        "sys.stderr.write",
        "sys.stdout.flush",
        "sys.stdout.write",
        "time.sleep",
    }
)


@register_rule
class SansIORule(Rule):
    code = "RPR001"
    name = "sans-io-purity"
    rationale = (
        "the inference core and protocol layer never perform IO; transports "
        "live in the service/UI layers"
    )
    default_scope = Scope(
        include=(
            "src/repro/core/*",
            "src/repro/relational/*",
            "src/repro/service/protocol.py",
            "src/repro/service/stepper.py",
        )
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in BANNED_MODULES:
                        yield self.finding(
                            module,
                            node,
                            f"import of IO/transport module {alias.name!r} in "
                            "sans-IO code",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if node.level == 0 and root in BANNED_MODULES:
                    yield self.finding(
                        module,
                        node,
                        f"import from IO/transport module {node.module!r} in "
                        "sans-IO code",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node)

    def _check_call(self, module: ModuleSource, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name) and func.id in BANNED_BUILTINS:
            yield self.finding(
                module,
                node,
                f"call to {func.id}() in sans-IO code; return data or emit a "
                "protocol event instead",
            )
            return
        dotted = dotted_name(func)
        if dotted in BANNED_DOTTED:
            yield self.finding(
                module,
                node,
                f"call to {dotted}() in sans-IO code"
                + ("; time.perf_counter is the allowed clock" if dotted == "time.sleep" else ""),
            )
