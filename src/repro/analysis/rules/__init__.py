"""The invariant rules.  Importing this package registers every rule."""

from . import (  # noqa: F401 - imports register the rules
    blocking_async,
    executor_discipline,
    layer_architecture,
    lazy_tables,
    lock_discipline,
    lock_order,
    numpy_containment,
    raw_sockets,
    resource_lifecycle,
    sans_io,
    seeded_rng,
    wire_registry,
)
