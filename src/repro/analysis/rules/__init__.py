"""The invariant rules.  Importing this package registers every rule."""

from . import (  # noqa: F401 - imports register the rules
    executor_discipline,
    lazy_tables,
    lock_discipline,
    numpy_containment,
    raw_sockets,
    sans_io,
    seeded_rng,
    wire_registry,
)
