"""RPR003 — never materialize lazy cross products in the inference core.

Since the columnar/factorized setup pipeline (PR 3), a
:class:`~repro.relational.candidate.CandidateTable` built from a cross
product holds *base relation rows only*; ``table.rows`` exists as a lazy
compatibility property that reconstructs — and caches — every combination.
Touching it on a 10⁵-candidate table silently turns an O(Σ|Rᵢ|) algorithm
into an O(Π|Rᵢ|) one and pins the materialized rows in memory for the life
of the table: a 30× perf cliff that no test asserts against, because the
result is still *correct*.

Inside ``core/`` (strategies included) the rule therefore flags:

* any ``.rows`` attribute access, and
* ``list(…)`` / ``tuple(…)`` over an expression whose name looks like a
  candidate table (``table``, ``self.table``, ``candidate_table``, …) —
  iterating a table reconstructs every row.

Type-level code paths (masks, histograms, ``prune_counts_batch``) never need
either.  A deliberate fallback path materializing rows (none exist in
``core/`` today; the row-wise fallbacks live in ``relational/``) documents
itself with an inline suppression.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..framework import Finding, ModuleSource, Rule, Scope, dotted_name, register_rule


def _names_a_table(node: ast.AST) -> str | None:
    """The dotted name of the argument when it plausibly names a table."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    terminal = dotted.rsplit(".", 1)[-1]
    return dotted if "table" in terminal.lower() else None


@register_rule
class LazyTableRule(Rule):
    code = "RPR003"
    name = "lazy-table-discipline"
    rationale = (
        "core code scores candidates type-level; '.rows' and list(table) "
        "materialize the factorized cross product"
    )
    default_scope = Scope(include=("src/repro/core/*",))

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and node.attr == "rows":
                yield self.finding(
                    module,
                    node,
                    "'.rows' materializes the (lazy) cross product; use the "
                    "type-level API (masks, type_sizes, prune_counts_batch)",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and len(node.args) == 1
            ):
                named = _names_a_table(node.args[0])
                if named is not None:
                    yield self.finding(
                        module,
                        node,
                        f"{node.func.id}({named}) iterates — and materializes — "
                        "every candidate row; stay on the type-level API",
                    )
