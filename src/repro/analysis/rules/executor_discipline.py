"""RPR007 — executor discipline: pools are lazy, owned, and centralized.

Worker pools are expensive, stateful resources: a module-level pool spins up
threads or processes at import time (breaking ``import repro`` in contexts
that may never score a candidate, and forking from whatever state the
importer happens to hold), and a pool nobody shuts down leaks workers past
the session that needed them.  The project therefore centralizes pool
construction in :mod:`repro.core.parallel` — the one reviewed place that
knows the parallel mode, the worker count and the shutdown story.

The rule flags:

* **Module-level pool creation** anywhere — a pool constructor called at
  import time (outside any function), including inside
  ``repro.core.parallel`` itself.  Pools must be created lazily, on first
  use.
* **Pool creation outside the sanctioned module** — calls whose final name
  segment is a pool constructor (``ThreadPoolExecutor``,
  ``ProcessPoolExecutor``, ``Pool``, ``ThreadPool``) in any other file.
  Obtain pools via :func:`repro.core.parallel.create_thread_pool` or
  :func:`repro.core.parallel.get_executor` instead.
* **Pool-owning classes without a shutdown surface** — a class whose method
  assigns a pool (a pool constructor or ``create_thread_pool``) to a
  ``self`` attribute must define ``close``, ``shutdown``, ``__exit__`` or
  ``__aexit__`` so the owner can be shut down deterministically.
"""

from __future__ import annotations

import ast
import fnmatch
from collections.abc import Iterator

from ..framework import Finding, ModuleSource, Rule, Scope, dotted_name, register_rule

#: Final name segments that construct a worker pool.
POOL_CONSTRUCTORS = frozenset(
    {"ProcessPoolExecutor", "ThreadPoolExecutor", "Pool", "ThreadPool"}
)

#: Calls that hand out a pool (constructors plus the sanctioned factory);
#: assigning any of these to a ``self`` attribute makes a class a pool owner.
POOL_FACTORIES = POOL_CONSTRUCTORS | {"create_thread_pool"}

#: The one module allowed to call pool constructors (lazily).
SANCTIONED_MODULE = "*core/parallel.py"

#: Method names that count as a shutdown surface on a pool-owning class.
SHUTDOWN_METHODS = frozenset({"close", "shutdown", "__exit__", "__aexit__"})


def _final_segment(func: ast.expr) -> str | None:
    """The last dotted segment of a call target, or ``None``."""
    if isinstance(func, ast.Name):
        return func.id
    dotted = dotted_name(func)
    if dotted:
        return dotted.rsplit(".", 1)[-1]
    return None


def _nodes_inside_functions(tree: ast.Module) -> frozenset[int]:
    """Ids of every node nested inside a function or lambda body."""
    inside: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            for child in ast.walk(node):
                if child is not node:
                    inside.add(id(child))
    return frozenset(inside)


def _assigns_pool_to_self(method: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Does the method bind a pool factory's result to a ``self`` attribute?"""
    for node in ast.walk(method):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        if _final_segment(value.func) not in POOL_FACTORIES:
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                return True
    return False


@register_rule
class ExecutorDisciplineRule(Rule):
    code = "RPR007"
    name = "executor-discipline"
    rationale = (
        "worker pools are created lazily, only by repro.core.parallel, and "
        "every pool-owning class exposes a shutdown surface"
    )
    default_scope = Scope(include=("*",))

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        sanctioned = fnmatch.fnmatch(module.relpath, SANCTIONED_MODULE)
        inside_functions = _nodes_inside_functions(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                segment = _final_segment(node.func)
                if segment not in POOL_CONSTRUCTORS:
                    continue
                if id(node) not in inside_functions:
                    yield self.finding(
                        module,
                        node,
                        f"module-level {segment}() creation; pools must be "
                        "created lazily, on first use",
                    )
                elif not sanctioned:
                    yield self.finding(
                        module,
                        node,
                        f"{segment}() created outside repro.core.parallel; use "
                        "create_thread_pool() or get_executor() instead",
                    )
            elif isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module: ModuleSource, node: ast.ClassDef) -> Iterator[Finding]:
        methods = [
            item
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        if not any(_assigns_pool_to_self(method) for method in methods):
            return
        names = {method.name for method in methods}
        if names & SHUTDOWN_METHODS:
            return
        yield self.finding(
            module,
            node,
            f"class {node.name} owns a worker pool but defines none of "
            "close()/shutdown()/__exit__/__aexit__; pool owners must be "
            "shut down deterministically",
        )
