"""RPR010 — the cross-class lock-acquisition-order graph stays acyclic.

The serving tier holds several locks at once by design: the cluster
supervisor nests its broadcast lock over per-worker slot locks over the
registry lock, and a request path that recovers a dead worker re-enters the
registry lock while still holding the slot lock.  Each individual nesting
is fine; what must never happen is two code paths acquiring the same two
locks in *opposite* orders — the classic deadlock that only fires under
production concurrency, never in a unit test.

This rule builds the acquisition-order graph over the whole program:

* a node is a lock, canonicalized as ``ClassName.attr`` when the receiver's
  class resolves (``self._lock`` in ``ClusterSessionService``,
  ``slot.lock`` where ``slot: _WorkerSlot``) and as a file-local key
  otherwise;
* an edge ``A -> B`` means some path acquires ``B`` while holding ``A`` —
  either by syntactic ``with`` nesting, or by calling (transitively,
  through statically-resolvable project calls) a function that acquires
  ``B``;
* a cycle is a potential deadlock, reported once with both acquisition
  sites so the reviewer sees the two halves of the inversion.

``lock.acquire(blocking=False)`` polling (the heartbeat's try-lock) does
not create edges: a try-lock that backs off cannot deadlock.  Re-acquiring
the same key is ignored too — the serving tier's registry locks are
reentrant by contract (RLock).
"""

from __future__ import annotations

from collections.abc import Iterator

from ..framework import Finding, Scope, register_rule
from ..project import Acquisition, ProjectModel, ProjectRule


@register_rule
class LockOrderRule(ProjectRule):
    code = "RPR010"
    name = "lock-order"
    rationale = (
        "no two code paths acquire the same pair of locks in opposite orders "
        "(a cycle in the acquisition-order graph is a potential deadlock)"
    )
    default_scope = Scope()

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        # edge key -> representative (outer acquisition, inner acquisition)
        edges: dict[tuple[str, str], tuple[Acquisition, Acquisition]] = {}

        def record(outer: Acquisition, inner: Acquisition) -> None:
            if outer.key != inner.key:
                edges.setdefault((outer.key, inner.key), (outer, inner))

        for summary in project.iter_functions():
            for outer, inner in summary.lock_edges:
                record(outer, inner)
            for call in summary.calls:
                if not call.held or call.target is None:
                    continue
                for inner in project.transitive_acquisitions(call.target):
                    for outer in call.held:
                        record(outer, inner)

        yield from self._cycles(edges)

    def _cycles(
        self, edges: dict[tuple[str, str], tuple[Acquisition, Acquisition]]
    ) -> Iterator[Finding]:
        graph: dict[str, list[str]] = {}
        for outer_key, inner_key in edges:
            graph.setdefault(outer_key, []).append(inner_key)
        for targets in graph.values():
            targets.sort()
        seen: set[tuple[str, ...]] = set()
        state: dict[str, int] = {}
        stack: list[str] = []

        def visit(node: str) -> Iterator[Finding]:
            state[node] = 1
            stack.append(node)
            for target in graph.get(node, ()):
                if state.get(target, 0) == 1:
                    cycle = tuple(stack[stack.index(target) :])
                    key = _canonical_cycle(cycle)
                    if key not in seen:
                        seen.add(key)
                        yield self._cycle_finding(cycle, edges)
                elif state.get(target, 0) == 0:
                    yield from visit(target)
            stack.pop()
            state[node] = 2

        for node in sorted(graph):
            if state.get(node, 0) == 0:
                yield from visit(node)

    def _cycle_finding(
        self,
        cycle: tuple[str, ...],
        edges: dict[tuple[str, str], tuple[Acquisition, Acquisition]],
    ) -> Finding:
        pairs = [
            (cycle[i], cycle[(i + 1) % len(cycle)]) for i in range(len(cycle))
        ]
        sites = []
        for outer_key, inner_key in pairs:
            outer, inner = edges[(outer_key, inner_key)]
            sites.append(
                f"{outer.key} ({outer.relpath}:{outer.line}) then "
                f"{inner.key} ({inner.relpath}:{inner.line})"
            )
        anchor_outer, _ = edges[pairs[0]]
        order = " -> ".join([*cycle, cycle[0]])
        return self.finding_at(
            anchor_outer.relpath,
            anchor_outer.line,
            f"potential deadlock: lock-order cycle {order}; acquisition sites: "
            + "; ".join(sites),
        )


def _canonical_cycle(nodes: tuple[str, ...]) -> tuple[str, ...]:
    pivot = nodes.index(min(nodes))
    return nodes[pivot:] + nodes[:pivot]
