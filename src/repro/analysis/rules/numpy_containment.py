"""RPR004 — numpy is optional everywhere; unguarded imports only in kernels.

The pure-Python kernel fallback is a *supported configuration* (there is a
dedicated no-numpy CI job): the package must import and pass its whole test
suite with numpy absent.  One unguarded ``import numpy`` anywhere in the
import graph breaks that configuration — usually months later, on the first
machine without numpy.

The rule flags ``import numpy`` / ``from numpy import …`` unless the import
is wrapped in a ``try`` whose handlers catch ``ImportError`` (or
``ModuleNotFoundError``/a bare ``except``).  ``core/kernels.py`` — the one
module that owns the fast-path/fallback switch (:func:`numpy_enabled`,
``REPRO_KERNEL_BACKEND``) — is carved out in the project scoping config;
guarded importers like ``relational/columnar.py`` pass on their own.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..framework import Finding, ModuleSource, Rule, Scope, register_rule

_IMPORT_ERRORS = ("ImportError", "ModuleNotFoundError", "Exception", "BaseException")


def _catches_import_error(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # a bare except catches ImportError too
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    return any(isinstance(t, ast.Name) and t.id in _IMPORT_ERRORS for t in types)


class _Scan(ast.NodeVisitor):
    def __init__(self) -> None:
        self.unguarded: list[ast.stmt] = []
        self._guard_depth = 0

    def visit_Try(self, node: ast.Try) -> None:
        guarded = any(_catches_import_error(handler) for handler in node.handlers)
        if guarded:
            self._guard_depth += 1
        for child in node.body:
            self.visit(child)
        if guarded:
            self._guard_depth -= 1
        for part in (node.handlers, node.orelse, node.finalbody):
            for child in part:
                self.visit(child)

    def _check(self, node: ast.stmt, module_name: str) -> None:
        if module_name.split(".")[0] == "numpy" and self._guard_depth == 0:
            self.unguarded.append(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check(node, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0:
            self._check(node, node.module or "")


@register_rule
class NumpyContainmentRule(Rule):
    code = "RPR004"
    name = "numpy-containment"
    rationale = (
        "numpy is an optional fast path; every import outside core/kernels.py "
        "is guarded by try/except ImportError"
    )
    default_scope = Scope(include=("*",), exclude=("src/repro/core/kernels.py",))

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        scan = _Scan()
        scan.visit(module.tree)
        for node in scan.unguarded:
            yield self.finding(
                module,
                node,
                "unguarded numpy import; wrap in try/except ImportError (the "
                "pure-Python kernel fallback is a supported configuration)",
            )
