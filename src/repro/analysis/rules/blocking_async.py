"""RPR011 — nothing blocks the event loop inside an ``async def``.

The asyncio facade's whole contract is that the loop thread never waits on
the sync serving tier: every call into :class:`SessionService` (or the
cluster variant), every framed-socket send, every sleep goes through the
sanctioned ``create_thread_pool`` executor seam
(``loop.run_in_executor(self._executor, partial(...))``).  One direct call
is enough to stall *every* concurrent session on the loop — a latency bug
that benchmarks only catch under contention.

Flagged, inside any ``async def`` (nested ``def``/``lambda`` bodies are
separate execution contexts and exempt):

* calls whose resolved dotted name is known-blocking — ``time.sleep``, the
  ``subprocess`` run/``Popen`` family, ``os.system``/``os.popen``,
  ``socket.create_connection``, and the transport dial
  (``transport.connect``, which retries with sleeps);
* method calls whose receiver statically resolves to a *sync* service class
  (``SessionService``, ``ClusterSessionService``) — these take locks and do
  real work on the calling thread;
* ``send``/``recv``/``accept`` on a receiver resolving to
  ``FramedConnection``/``Listener`` — framed sockets block by design.

Receivers the model cannot type are *not* flagged: the rule prefers a
false negative over teaching people to sprinkle suppressions.  Handing a
bound method to ``run_in_executor``/``partial`` never trips the rule — the
call node executes on the worker thread, not the loop.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..framework import Finding, Scope, register_rule
from ..project import ProjectModel, ProjectRule

#: Resolved dotted callables that block the calling thread.
BLOCKING_DOTTED = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
    }
)

#: Suffixes of resolved dotted names that block (project seams).
BLOCKING_SUFFIXES = ("transport.connect",)

#: Sync service classes whose every method does thread-blocking work.
SYNC_SERVICE_CLASSES = frozenset({"SessionService", "ClusterSessionService"})

#: Blocking methods of the framed-transport classes.
TRANSPORT_BLOCKING = {
    "FramedConnection": frozenset({"send", "recv"}),
    "Listener": frozenset({"accept"}),
}


@register_rule
class BlockingInAsyncRule(ProjectRule):
    code = "RPR011"
    name = "blocking-in-async"
    rationale = (
        "async def bodies never call known-blocking callables (sync service "
        "methods, transport sends, time.sleep, subprocess) directly; blocking "
        "work goes through the create_thread_pool executor seam"
    )
    default_scope = Scope()

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        for summary in project.iter_functions():
            if not summary.is_async:
                continue
            for call in summary.calls:
                message = self._blocking_reason(call.dotted, call.receiver_class, call.method)
                if message is not None:
                    yield self.finding_at(
                        summary.relpath,
                        call.line,
                        f"{message} inside async def {summary.qualname!r}; "
                        "offload via the create_thread_pool executor "
                        "(loop.run_in_executor)",
                    )

    @staticmethod
    def _blocking_reason(
        dotted: str | None, receiver_class: str | None, method: str | None
    ) -> str | None:
        if dotted is not None:
            if dotted in BLOCKING_DOTTED:
                return f"blocking call {dotted}()"
            if any(dotted.endswith(suffix) for suffix in BLOCKING_SUFFIXES):
                return f"blocking transport dial {dotted}()"
        if receiver_class is not None and method is not None:
            if receiver_class in SYNC_SERVICE_CLASSES and not method.startswith("_"):
                return f"direct sync-service call {receiver_class}.{method}()"
            blocking = TRANSPORT_BLOCKING.get(receiver_class)
            if blocking is not None and method in blocking:
                return f"blocking transport call {receiver_class}.{method}()"
        return None
