"""RPR012 — constructed resources are owned on every path.

A :class:`FramedConnection` leaked on an error path is a socket the
supervisor can no longer health-check and an fd that survives until GC
feels like it; a leaked executor is a thread pool outliving the session
that needed it; a leaked ``Popen`` is a zombie.  PR 9's chaos harness kills
workers on purpose — the cleanup story only holds if *every* construction
site has an owner.

For every tracked construction in a function body —
``FramedConnection``/``Listener``, the transport factories
(``connect``/``framed_pair``), ``create_thread_pool`` and the stdlib
executors, ``subprocess.Popen`` — the rule accepts exactly the ownership
shapes the repository uses:

* consumed by a ``with``/``async with`` (directly, or the bound variable
  used as a context manager later, or handed to an
  ``ExitStack.enter_context``/``push``/``callback``);
* a ``close``/``shutdown``/``terminate``/``kill`` call on the variable
  inside a ``finally`` block, or inside an ``except`` handler that
  re-raises (the ``Listener.__init__`` close-on-error idiom: the error
  path is covered, the success path hands ownership elsewhere);
* stored on ``self`` of a class exposing a lifecycle method
  (``close``/``shutdown``/``aclose``/``__exit__``/``__aexit__``) — the
  class takes over ownership;
* returned or yielded — the caller takes over ownership.

A construction bound to a local that does none of the above is flagged at
the construction line; a plain ``x.close()`` *outside* ``try/finally`` does
not count, because the close never runs when the code between construction
and close raises — the exact path chaos testing exercises.  Constructions
passed straight into another call (``use(FramedConnection(...))``) transfer
ownership and are not tracked; receivers the resolver cannot see through
are never guessed at.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..framework import Finding, Scope, dotted_name, register_rule
from ..project import LIFECYCLE_METHODS, ModuleInfo, ProjectModel, ProjectRule

#: Constructor class names tracked wherever they resolve from.
TRACKED_CLASSES = frozenset(
    {"FramedConnection", "Listener", "ThreadPoolExecutor", "ProcessPoolExecutor", "Popen"}
)

#: Factory functions tracked when they resolve into the owning module.
TRACKED_FACTORIES = {
    "connect": "transport",
    "framed_pair": "transport",
    "create_thread_pool": "parallel",
}

#: Method calls on the resource that release it (when inside ``finally``).
RELEASE_METHODS = frozenset({"close", "shutdown", "aclose", "terminate", "kill"})

#: ExitStack-style sinks that take ownership of an argument.
OWNERSHIP_SINKS = frozenset({"enter_context", "push", "callback"})


@register_rule
class ResourceLifecycleRule(ProjectRule):
    code = "RPR012"
    name = "resource-lifecycle"
    rationale = (
        "every constructed connection/listener/executor/Popen is closed on all "
        "paths: with/try-finally, stored on a class with a lifecycle method, "
        "or returned to the caller"
    )
    default_scope = Scope()

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        for summary in project.iter_functions():
            info = project.modules[summary.module]
            owner = None
            if summary.cls is not None:
                owner = project.resolve_class(summary.cls, summary.module)
            scan = _ResourceScan(project, info, owner_has_lifecycle=bool(owner and owner.has_lifecycle))
            scan.run(summary.node)
            for leak in scan.leaks():
                yield self.finding_at(summary.relpath, leak.line, leak.message(summary.qualname))


class _Leak:
    def __init__(self, display: str, line: int, detail: str) -> None:
        self.display = display
        self.line = line
        self.detail = detail

    def message(self, qualname: str) -> str:
        return (
            f"{self.display} constructed in {qualname!r} {self.detail}; close it "
            "on all paths (with / try-finally), store it on self of a class with "
            "close/shutdown, or return it to the caller"
        )


class _ResourceScan:
    """Escape analysis for tracked resources in one function body."""

    def __init__(
        self, project: ProjectModel, info: ModuleInfo, owner_has_lifecycle: bool
    ) -> None:
        self.project = project
        self.info = info
        self.owner_has_lifecycle = owner_has_lifecycle
        self.tracked: dict[str, tuple[str, int]] = {}  # var -> (display, line)
        self.escaped: set[str] = set()
        self.closed_no_finally: set[str] = set()
        self.discarded: list[_Leak] = []
        self.self_store_no_lifecycle: list[_Leak] = []

    # -------------------------------------------------------------- #
    def run(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for stmt in func.body:
            self._visit(stmt, in_finally=False)

    def leaks(self) -> Iterator[_Leak]:
        yield from self.discarded
        yield from self.self_store_no_lifecycle
        reported: set[tuple[str, int]] = set()
        for var, (display, line) in self.tracked.items():
            if var in self.escaped:
                continue
            if (display, line) in reported:  # both ends of framed_pair leak as one site
                continue
            reported.add((display, line))
            if var in self.closed_no_finally:
                detail = (
                    "is closed only outside try/finally (the close never runs "
                    "when an intervening statement raises)"
                )
            else:
                detail = "has no owner on some path"
            yield _Leak(display, line, detail)

    # -------------------------------------------------------------- #
    def _visit(self, node: ast.AST, in_finally: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            return
        if isinstance(node, ast.Try):
            for child in [*node.body, *node.orelse]:
                self._visit(child, in_finally)
            for handler in node.handlers:
                # A close inside an except handler that re-raises is the
                # repository's close-on-error idiom (see Listener.__init__):
                # the error path is covered, the success path transferred
                # ownership.  A handler that swallows gets no credit.
                reraises = any(
                    isinstance(inner, ast.Raise) and inner.exc is None
                    for inner in ast.walk(handler)
                )
                self._visit(handler, in_finally or reraises)
            for child in node.finalbody:
                self._visit(child, True)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self._mark_with_target(item.context_expr)
                self._visit(item.context_expr, in_finally)
            for child in node.body:
                self._visit(child, in_finally)
            return
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            self._visit_assign(node.targets[0], node.value, node)
            self._visit(node.value, in_finally)
            return
        if isinstance(node, ast.Expr):
            self._visit_expr_statement(node.value, in_finally)
            return
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            if value is not None:
                for name in ast.walk(value):
                    if isinstance(name, ast.Name):
                        self.escaped.add(name.id)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node, in_finally)
        for child in ast.iter_child_nodes(node):
            self._visit(child, in_finally)

    def _visit_expr_statement(self, value: ast.expr, in_finally: bool) -> None:
        if isinstance(value, ast.Await):
            value = value.value
        display = self._tracked_construction(value)
        if display is not None:
            self.discarded.append(
                _Leak(display, value.lineno, "is discarded without an owner")
            )
            return
        if isinstance(value, ast.Call):
            self._visit_call(value, in_finally)
        self._visit_children_of_expr(value, in_finally)

    def _visit_children_of_expr(self, value: ast.expr, in_finally: bool) -> None:
        for child in ast.iter_child_nodes(value):
            self._visit(child, in_finally)

    def _visit_call(self, call: ast.Call, in_finally: bool) -> None:
        func = call.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            receiver = func.value.id
            if func.attr in RELEASE_METHODS and receiver in self.tracked:
                if in_finally:
                    self.escaped.add(receiver)
                else:
                    self.closed_no_finally.add(receiver)
            if func.attr in OWNERSHIP_SINKS:
                for arg in call.args:
                    if isinstance(arg, ast.Name):
                        self.escaped.add(arg.id)

    def _visit_assign(self, target: ast.expr, value: ast.expr, node: ast.Assign) -> None:
        if isinstance(value, ast.Await):
            value = value.value
        display = self._tracked_construction(value)
        if isinstance(target, ast.Name):
            if display is not None:
                self.tracked[target.id] = (display, value.lineno)
                return
            if isinstance(value, ast.Name) and value.id in self.tracked:
                # Alias: ownership follows the new name too.
                self.tracked[target.id] = self.tracked[value.id]
                self.escaped.add(value.id)
                return
        elif isinstance(target, ast.Tuple) and all(
            isinstance(elt, ast.Name) for elt in target.elts
        ):
            if display is not None:
                # ``a, b = framed_pair(...)``: every bound name owns a resource.
                for elt in target.elts:
                    assert isinstance(elt, ast.Name)
                    self.tracked[elt.id] = (display, value.lineno)
                return
            if isinstance(value, ast.Tuple) and len(value.elts) == len(target.elts):
                for elt, sub in zip(target.elts, value.elts):
                    assert isinstance(elt, ast.Name)
                    self._visit_assign(elt, sub, node)
                return
        elif isinstance(target, ast.Attribute):
            stored = value if isinstance(value, ast.Name) else None
            if display is not None or (stored is not None and stored.id in self.tracked):
                if self._is_self_attr(target) and not self.owner_has_lifecycle:
                    shown = display or self.tracked[stored.id][0]  # type: ignore[index]
                    line = value.lineno
                    self.self_store_no_lifecycle.append(
                        _Leak(
                            shown,
                            line,
                            "is stored on self of a class with no "
                            "close/shutdown/__exit__ lifecycle method",
                        )
                    )
                if stored is not None:
                    self.escaped.add(stored.id)
                return

    @staticmethod
    def _is_self_attr(target: ast.Attribute) -> bool:
        return isinstance(target.value, ast.Name) and target.value.id == "self"

    def _mark_with_target(self, context_expr: ast.expr) -> None:
        if isinstance(context_expr, ast.Name):
            self.escaped.add(context_expr.id)
        elif isinstance(context_expr, ast.Call):
            # ``with contextlib.closing(conn):`` — the wrapper owns it now.
            for arg in context_expr.args:
                if isinstance(arg, ast.Name):
                    self.escaped.add(arg.id)
        # ``with connect(...) as conn:`` — the construction is consumed by the
        # with-statement itself and never enters the tracked set.

    # -------------------------------------------------------------- #
    def _tracked_construction(self, value: ast.expr) -> str | None:
        """Display name when ``value`` constructs a tracked resource."""
        if isinstance(value, ast.IfExp):
            return self._tracked_construction(value.body) or self._tracked_construction(
                value.orelse
            )
        if not isinstance(value, ast.Call):
            return None
        dotted = dotted_name(value.func)
        if dotted is None:
            return None
        resolved = self.project.resolve_dotted(self.info.name, dotted)
        last = resolved.split(".")[-1]
        if last in TRACKED_CLASSES:
            if last == "Popen" and "subprocess" not in resolved.split("."):
                return None
            return last
        owner = TRACKED_FACTORIES.get(last)
        if owner is not None:
            segments = resolved.split(".")
            if owner in segments[:-1] or resolved == last:
                return f"{last}()"
        return None
