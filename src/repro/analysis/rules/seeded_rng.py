"""RPR005 — all randomness flows through an explicit seeded generator.

Every stochastic component in the project — noisy oracles, simulated crowd
workers, synthetic dataset generators, the random baseline strategy — takes a
``seed`` and builds its own ``random.Random(seed)``.  That is what makes
experiment traces byte-reproducible, lets the benchmarks pin expected
interaction sequences, and keeps concurrent sessions from interleaving draws
on the shared module-level generator (``random.random`` et al. share one
global state across threads: a concurrency bug *and* a reproducibility bug).

The rule flags, everywhere in the repo:

* calls/references to the module-level generator — ``random.<fn>()`` for any
  ``fn`` other than the ``Random``/``SystemRandom`` constructors,
* ``from random import shuffle, …`` (importing the module-level functions
  directly just hides the global state), and
* numpy's legacy global generator — ``numpy.random.seed``/``np.random.rand``
  and friends (use ``numpy.random.Generator`` via ``default_rng(seed)``
  when numpy randomness is ever needed).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..framework import Finding, ModuleSource, Rule, Scope, dotted_name, register_rule

#: Names importable from ``random`` that do not touch the global generator.
_ALLOWED_FROM_RANDOM = frozenset({"Random", "SystemRandom"})


@register_rule
class SeededRngRule(Rule):
    code = "RPR005"
    name = "seeded-rng"
    rationale = (
        "no module-level RNG state: every stochastic component threads an "
        "explicit random.Random(seed)"
    )
    default_scope = Scope(include=("*",))

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        random_aliases = self._module_aliases(module.tree, "random")
        numpy_aliases = self._module_aliases(module.tree, "numpy")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in _ALLOWED_FROM_RANDOM:
                            yield self.finding(
                                module,
                                node,
                                f"'from random import {alias.name}' binds the "
                                "module-level generator; build a "
                                "random.Random(seed) instead",
                            )
                elif node.module in ("numpy.random", "numpy"):
                    for alias in node.names:
                        if node.module == "numpy.random" and alias.name[:1].islower():
                            if alias.name != "default_rng":
                                yield self.finding(
                                    module,
                                    node,
                                    f"'from numpy.random import {alias.name}' uses "
                                    "the legacy global generator; use "
                                    "default_rng(seed)",
                                )
            elif isinstance(node, ast.Attribute):
                dotted = dotted_name(node)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if (
                    len(parts) == 2
                    and parts[0] in random_aliases
                    and parts[1] not in _ALLOWED_FROM_RANDOM
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{dotted} uses the shared module-level generator; "
                        "thread an explicit random.Random(seed)",
                    )
                elif (
                    len(parts) == 3
                    and parts[0] in numpy_aliases
                    and parts[1] == "random"
                    and parts[2] not in ("Generator", "default_rng", "SeedSequence")
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{dotted} uses numpy's legacy global generator; use "
                        "numpy.random.default_rng(seed)",
                    )

    @staticmethod
    def _module_aliases(tree: ast.Module, name: str) -> frozenset[str]:
        """Local names the module is bound to (``import numpy as np`` -> np)."""
        aliases = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == name:
                        aliases.add(alias.asname or alias.name)
        return frozenset(aliases)
