"""The whole-program model behind the cross-module invariant rules.

The per-file rules (:class:`~repro.analysis.framework.Rule`) see one
:class:`~repro.analysis.framework.ModuleSource` at a time, which is exactly
right for invariants like "no ``print`` in the sans-IO core" — and exactly
wrong for the bug classes that live *between* modules: an import cycle, a
lock-order inversion between two classes, a blocking call inside an
``async def``, a connection leaked by the function that constructed it.

:class:`ProjectModel` is built once per analyzer run from every parsed
module and gives project rules three things:

* the **resolved intra-repo import graph** (:attr:`ProjectModel.import_edges`)
  with each edge classified as import-time, ``TYPE_CHECKING``-only, or
  deferred (inside a function body) — the last two are the repository's
  sanctioned ways to point *up* the layer stack;
* **per-class summaries** (:class:`ClassInfo`): attribute types inferred from
  ``__init__`` and annotations, method tables, and whether the class exposes
  a lifecycle surface (``close``/``shutdown``/``__exit__``/…);
* **per-function summaries** (:class:`FunctionSummary`): the lock
  acquisitions a function performs (``with self._lock: …``), the nesting
  edges between them, and every call site together with the locks held at
  it and the statically-resolved callee — enough for a transitive
  lock-order graph and for blocking-call detection with receiver types.

The type inference is deliberately small and *conservative*: parameter and
attribute annotations, ``x = ClassName(...)`` constructor assignments,
return annotations of project functions, and container element types
(``dict[str, T]``/``list[T]``).  Anything it cannot resolve stays ``None``
and the rules built on top treat "unknown" as "do not flag".

:class:`ProjectRule` is the base class for rules that check the model
instead of a single module; the analyzer runs them once per pass and filters
their findings through the same :class:`~repro.analysis.framework.Scope` and
suppression machinery as per-file findings.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from .framework import Finding, ModuleSource, Rule, dotted_name

#: Methods that make a class an acceptable owner of a held resource.
LIFECYCLE_METHODS = frozenset(
    {"close", "shutdown", "aclose", "terminate", "kill", "__exit__", "__aexit__"}
)


def _is_lock_name(name: str) -> bool:
    """Shared lock-shape heuristic (same as RPR002): ``lock`` or ``*_lock``."""
    return name == "lock" or name.endswith("_lock")


@dataclass(frozen=True)
class TypeInfo:
    """A resolved-enough type: a class name, or a container of one."""

    kind: str  # "class" | "dict" | "list"
    name: str | None = None  # class name (last dotted segment) for kind "class"
    item: TypeInfo | None = None  # value/element type for containers


@dataclass(frozen=True)
class ImportEdge:
    """One resolved intra-repository import."""

    importer: str  # dotted module name of the importing module
    relpath: str  # file carrying the import statement
    target: str  # dotted module name of the imported module
    line: int
    deferred: bool  # inside a function/method body (runtime import)
    type_checking: bool  # inside an ``if TYPE_CHECKING:`` block

    @property
    def import_time(self) -> bool:
        """True when the edge executes when the importer is imported."""
        return not self.deferred and not self.type_checking


@dataclass(frozen=True)
class Acquisition:
    """One lock acquisition site: canonical lock key plus source location."""

    key: str  # e.g. "ClusterSessionService._lock" or "mod:local_lock"
    relpath: str
    line: int


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function, with resolution results."""

    line: int
    dotted: str | None  # resolved dotted callee ("time.sleep") when plain
    target: str | None  # key into ProjectModel.functions when project-local
    receiver_class: str | None  # inferred class of ``obj`` in ``obj.m(...)``
    method: str | None  # ``m`` in ``obj.m(...)``
    held: tuple[Acquisition, ...]  # locks held while the call executes


@dataclass
class FunctionSummary:
    """Everything the project rules need to know about one function."""

    module: str
    relpath: str
    qualname: str  # "Class.method" or "function"
    cls: str | None
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool
    acquisitions: tuple[Acquisition, ...] = ()
    lock_edges: tuple[tuple[Acquisition, Acquisition], ...] = ()
    calls: tuple[CallSite, ...] = ()

    @property
    def key(self) -> str:
        return f"{self.module}:{self.qualname}"


@dataclass
class ClassInfo:
    """Per-class summary: attribute types, methods, lifecycle surface."""

    module: str
    relpath: str
    name: str
    node: ast.ClassDef
    bases: tuple[str, ...] = ()
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(default_factory=dict)
    attr_types: dict[str, TypeInfo] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.module}:{self.name}"

    @property
    def has_lifecycle(self) -> bool:
        return bool(LIFECYCLE_METHODS & self.methods.keys())


@dataclass
class ModuleInfo:
    """One parsed module in the project graph."""

    name: str  # dotted module name ("repro.service.cluster")
    relpath: str
    source: ModuleSource
    is_package: bool
    symbols: dict[str, str] = field(default_factory=dict)  # local name -> dotted origin
    functions: dict[str, str] = field(default_factory=dict)  # module-level def -> summary key
    classes: dict[str, str] = field(default_factory=dict)  # class name -> ClassInfo key


def _module_name(path: Path, relpath: str) -> tuple[str, bool]:
    """Dotted module name for a file, anchored at its topmost package.

    Walks up from the file while parent directories are packages (carry an
    ``__init__.py``); a file outside any package is a top-level module named
    by its stem (benchmarks and scripts resolve this way).
    """
    parts = [path.stem]
    is_package = path.stem == "__init__"
    if is_package:
        parts = []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    if not parts:  # an __init__.py with no package parent
        parts = [path.stem]
    return ".".join(parts), is_package


class ProjectModel:
    """The one-pass whole-program model the :class:`ProjectRule`\\ s check."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self.modules: dict[str, ModuleInfo] = {}
        self.by_relpath: dict[str, ModuleInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.class_names: dict[str, list[ClassInfo]] = {}
        self.functions: dict[str, FunctionSummary] = {}
        self.import_edges: list[ImportEdge] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, sources: Iterable[ModuleSource], root: Path) -> ProjectModel:
        model = cls(root)
        for source in sources:
            name, is_package = _module_name(source.path, source.relpath)
            if name in model.modules:  # same module reachable twice: keep first
                continue
            model.modules[name] = ModuleInfo(
                name=name, relpath=source.relpath, source=source, is_package=is_package
            )
            model.by_relpath[source.relpath] = model.modules[name]
        for info in model.modules.values():
            model._scan_imports(info)
        for info in model.modules.values():
            model._scan_classes(info)
        for info in model.modules.values():
            model._scan_functions(info)
        return model

    def _scan_imports(self, info: ModuleInfo) -> None:
        """Record import edges (classified) and the module's symbol table."""
        for node, deferred, type_checking in _walk_imports(info.source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = alias.name
                    bound = alias.asname or alias.name.split(".")[0]
                    origin = target if alias.asname else target.split(".")[0]
                    if not deferred:
                        info.symbols.setdefault(bound, origin)
                    self._record_edge(info, target, node.lineno, deferred, type_checking)
            else:  # ImportFrom
                base = self._resolve_from_base(info, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    submodule = f"{base}.{alias.name}" if base else alias.name
                    bound = alias.asname or alias.name
                    # ``from pkg import mod`` binds a module; ``from mod
                    # import symbol`` binds a symbol of the module.  Either
                    # way the *import edge* points at the module that gets
                    # executed.
                    if submodule in self.modules:
                        origin, edge_target = submodule, submodule
                    else:
                        origin, edge_target = submodule, base
                    if not deferred:
                        info.symbols.setdefault(bound, origin)
                    self._record_edge(info, edge_target, node.lineno, deferred, type_checking)

    def _resolve_from_base(self, info: ModuleInfo, node: ast.ImportFrom) -> str | None:
        """The absolute dotted module a ``from … import`` pulls from."""
        if not node.level:
            return node.module or None
        parts = info.name.split(".")
        pkg_parts = parts if info.is_package else parts[:-1]
        if node.level - 1 > len(pkg_parts):
            return None
        anchor = pkg_parts[: len(pkg_parts) - (node.level - 1)]
        if node.module:
            anchor = [*anchor, *node.module.split(".")]
        return ".".join(anchor) if anchor else None

    def _record_edge(
        self, info: ModuleInfo, target: str, line: int, deferred: bool, type_checking: bool
    ) -> None:
        resolved = self._project_module(target)
        if resolved is None or resolved == info.name:
            return
        self.import_edges.append(
            ImportEdge(
                importer=info.name,
                relpath=info.relpath,
                target=resolved,
                line=line,
                deferred=deferred,
                type_checking=type_checking,
            )
        )

    def _project_module(self, dotted: str) -> str | None:
        """The longest prefix of ``dotted`` that names a project module."""
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return None

    def _scan_classes(self, info: ModuleInfo) -> None:
        for node in info.source.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            cls_info = ClassInfo(
                module=info.name,
                relpath=info.relpath,
                name=node.name,
                node=node,
                bases=tuple(
                    base for base in (dotted_name(b) for b in node.bases) if base
                ),
            )
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls_info.methods[stmt.name] = stmt
                elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                    declared = _annotation_type(stmt.annotation)
                    if declared is not None:
                        cls_info.attr_types[stmt.target.id] = declared
            init = cls_info.methods.get("__init__")
            if init is not None:
                self._scan_init_attrs(cls_info, init)
            self.classes[cls_info.key] = cls_info
            self.class_names.setdefault(node.name, []).append(cls_info)
            info.classes[node.name] = cls_info.key

    def _scan_init_attrs(self, cls_info: ClassInfo, init: ast.FunctionDef) -> None:
        """Infer ``self.attr`` types from ``__init__`` assignments."""
        for stmt in ast.walk(init):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value, annotation = stmt.target, stmt.value, stmt.annotation
            if (
                not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            inferred = _annotation_type(annotation) if annotation is not None else None
            if inferred is None and value is not None:
                inferred = _construction_type(value)
            if inferred is not None:
                cls_info.attr_types.setdefault(target.attr, inferred)

    def _scan_functions(self, info: ModuleInfo) -> None:
        for node in info.source.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                summary = self._summarize_function(info, node, cls=None)
                self.functions[summary.key] = summary
                info.functions[node.name] = summary.key
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        summary = self._summarize_function(info, stmt, cls=node.name)
                        self.functions[summary.key] = summary

    def _summarize_function(
        self,
        info: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: str | None,
    ) -> FunctionSummary:
        qualname = f"{cls}.{node.name}" if cls else node.name
        summary = FunctionSummary(
            module=info.name,
            relpath=info.relpath,
            qualname=qualname,
            cls=cls,
            name=node.name,
            node=node,
            is_async=isinstance(node, ast.AsyncFunctionDef),
        )
        scanner = _FunctionScanner(self, info, cls)
        scanner.scan(node)
        summary.acquisitions = tuple(scanner.acquisitions)
        summary.lock_edges = tuple(scanner.edges)
        summary.calls = tuple(scanner.calls)
        return summary

    # ------------------------------------------------------------------ #
    # Resolution helpers (shared with the rules)
    # ------------------------------------------------------------------ #
    def resolve_class(self, name: str, module: str) -> ClassInfo | None:
        """The :class:`ClassInfo` a bare class name refers to in a module."""
        info = self.modules.get(module)
        short = name.split(".")[-1]
        if info is not None:
            key = info.classes.get(short)
            if key is not None:
                return self.classes[key]
            origin = info.symbols.get(name.split(".")[0])
            if origin is not None:
                dotted = origin + name[len(name.split(".")[0]) :]
                owner = self._project_module(dotted)
                if owner is not None and owner != dotted:
                    attr = dotted[len(owner) + 1 :].split(".")[0]
                    target = self.modules[owner].classes.get(attr)
                    if target is not None:
                        return self.classes[target]
        candidates = self.class_names.get(short, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_dotted(self, module: str, dotted: str) -> str:
        """Expand a dotted name through the module's import symbol table.

        ``Popen`` under ``from subprocess import Popen`` resolves to
        ``subprocess.Popen``; unknown first segments pass through unchanged.
        """
        info = self.modules.get(module)
        if info is None:
            return dotted
        head, _, rest = dotted.partition(".")
        origin = info.symbols.get(head)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin

    def class_method(
        self, cls_info: ClassInfo, method: str, _depth: int = 0
    ) -> tuple[ClassInfo, ast.FunctionDef | ast.AsyncFunctionDef] | None:
        """Resolve a method on a class or (one hop of) its project bases."""
        node = cls_info.methods.get(method)
        if node is not None:
            return cls_info, node
        if _depth >= 2:
            return None
        for base in cls_info.bases:
            base_info = self.resolve_class(base, cls_info.module)
            if base_info is not None:
                found = self.class_method(base_info, method, _depth + 1)
                if found is not None:
                    return found
        return None

    def iter_functions(self) -> Iterator[FunctionSummary]:
        yield from self.functions.values()

    def transitive_acquisitions(self, key: str) -> frozenset[Acquisition]:
        """All locks a function may acquire, directly or through callees."""
        memo: dict[str, frozenset[Acquisition]] = getattr(self, "_acq_memo", {})
        self._acq_memo = memo
        return self._acquires(key, memo, frozenset())

    def _acquires(
        self,
        key: str,
        memo: dict[str, frozenset[Acquisition]],
        visiting: frozenset[str],
    ) -> frozenset[Acquisition]:
        if key in memo:
            return memo[key]
        if key in visiting:
            return frozenset()
        summary = self.functions.get(key)
        if summary is None:
            return frozenset()
        visiting = visiting | {key}
        acquired = set(summary.acquisitions)
        for call in summary.calls:
            if call.target is not None:
                acquired |= self._acquires(call.target, memo, visiting)
        result = frozenset(acquired)
        memo[key] = result
        return result


def _walk_imports(
    tree: ast.Module,
) -> Iterator[tuple[ast.Import | ast.ImportFrom, bool, bool]]:
    """Yield ``(node, deferred, type_checking)`` for every import statement."""

    def visit(node: ast.AST, deferred: bool, type_checking: bool) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                yield child, deferred, type_checking
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                yield from visit(child, True, type_checking)
            elif isinstance(child, ast.If) and _is_type_checking_test(child.test):
                for stmt in child.body:
                    yield from visit_stmt(stmt, deferred, True)
                for stmt in child.orelse:
                    yield from visit_stmt(stmt, deferred, type_checking)
            else:
                yield from visit(child, deferred, type_checking)

    def visit_stmt(stmt: ast.stmt, deferred: bool, type_checking: bool) -> Iterator:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            yield stmt, deferred, type_checking
        else:
            yield from visit(stmt, deferred, type_checking)

    yield from visit(tree, False, False)


def _is_type_checking_test(test: ast.expr) -> bool:
    name = dotted_name(test)
    return name in ("TYPE_CHECKING", "typing.TYPE_CHECKING")


def _annotation_type(annotation: ast.expr | None) -> TypeInfo | None:
    """A :class:`TypeInfo` from an annotation expression, or ``None``."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, (ast.Name, ast.Attribute)):
        dotted = dotted_name(annotation)
        if dotted is None or dotted in ("None", "object"):
            return None
        return TypeInfo(kind="class", name=dotted.split(".")[-1])
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        left = _annotation_type(annotation.left)
        return left if left is not None else _annotation_type(annotation.right)
    if isinstance(annotation, ast.Subscript):
        base = dotted_name(annotation.value)
        base_short = (base or "").split(".")[-1]
        elements: list[ast.expr]
        if isinstance(annotation.slice, ast.Tuple):
            elements = list(annotation.slice.elts)
        else:
            elements = [annotation.slice]
        if base_short in ("Optional",):
            return _annotation_type(elements[0])
        if base_short in ("dict", "Dict", "Mapping", "MutableMapping", "defaultdict"):
            item = _annotation_type(elements[-1]) if elements else None
            return TypeInfo(kind="dict", item=item)
        if base_short in ("list", "List", "Sequence", "Iterable", "Iterator",
                          "tuple", "Tuple", "set", "Set", "frozenset", "FrozenSet"):
            item = _annotation_type(elements[0]) if elements else None
            return TypeInfo(kind="list", item=item)
        if base is not None:
            return TypeInfo(kind="class", name=base_short)
    return None


def _construction_type(value: ast.expr) -> TypeInfo | None:
    """The type a ``self.x = <value>`` assignment constructs, if evident."""
    if isinstance(value, ast.IfExp):
        return _construction_type(value.body) or _construction_type(value.orelse)
    if isinstance(value, ast.Call):
        dotted = dotted_name(value.func)
        if dotted is not None and dotted.split(".")[-1][:1].isupper():
            return TypeInfo(kind="class", name=dotted.split(".")[-1])
        return None
    if isinstance(value, (ast.List, ast.ListComp)):
        inner = value.elt if isinstance(value, ast.ListComp) else (
            value.elts[0] if value.elts else None
        )
        item = _construction_type(inner) if inner is not None else None
        return TypeInfo(kind="list", item=item)
    if isinstance(value, (ast.Dict, ast.DictComp)):
        inner = value.value if isinstance(value, ast.DictComp) else (
            value.values[0] if value.values else None
        )
        item = _construction_type(inner) if inner is not None else None
        return TypeInfo(kind="dict", item=item)
    return None


class _FunctionScanner:
    """One-pass walk of a function body: locks, nesting edges, call sites.

    Maintains a small flow-insensitive type environment (parameter and local
    annotations, constructor assignments, return annotations of resolvable
    project calls, container element types) so lock expressions and call
    receivers canonicalize to ``ClassName.attr`` keys wherever possible.
    Nested function and class bodies are *not* descended into: they execute
    on their own schedule, not as part of this function's frame.
    """

    def __init__(self, model: ProjectModel, info: ModuleInfo, cls: str | None) -> None:
        self.model = model
        self.info = info
        self.cls = cls
        self.env: dict[str, TypeInfo] = {}
        self.local_symbols: dict[str, str] = {}
        self.lock_stack: list[Acquisition] = []
        self.acquisitions: list[Acquisition] = []
        self.edges: list[tuple[Acquisition, Acquisition]] = []
        self.calls: list[CallSite] = []

    def scan(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            declared = _annotation_type(arg.annotation)
            if declared is not None:
                self.env[arg.arg] = declared
        for stmt in node.body:
            self._visit(stmt)

    # -------------------------------------------------------------- #
    # Walk
    # -------------------------------------------------------------- #
    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._visit_with(node)
            return
        if isinstance(node, ast.ImportFrom) and node.module:
            base = self.model._resolve_from_base(self.info, node)
            if base:
                for alias in node.names:
                    if alias.name != "*":
                        self.local_symbols[alias.asname or alias.name] = f"{base}.{alias.name}"
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                self.local_symbols[bound] = alias.name if alias.asname else alias.name.split(".")[0]
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            self._record_assignment(node.targets[0], node.value)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            declared = _annotation_type(node.annotation)
            if declared is not None:
                self.env[node.target.id] = declared
        elif isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(node.target, ast.Name):
            iterated = self._type_of(node.iter)
            if iterated is not None and iterated.kind == "list" and iterated.item:
                self.env[node.target.id] = iterated.item
        if isinstance(node, ast.Call):
            self._record_call(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        pushed = 0
        for item in node.items:
            expr = item.context_expr
            self._visit(expr)
            key = self._lock_key(expr)
            if key is not None:
                acq = Acquisition(key=key, relpath=self.info.relpath, line=expr.lineno)
                for held in self.lock_stack:
                    if held.key != acq.key:
                        self.edges.append((held, acq))
                self.acquisitions.append(acq)
                self.lock_stack.append(acq)
                pushed += 1
            if item.optional_vars is not None and isinstance(item.optional_vars, ast.Name):
                bound = self._type_of(expr)
                if bound is not None:
                    self.env[item.optional_vars.id] = bound
        for stmt in node.body:
            self._visit(stmt)
        for _ in range(pushed):
            self.lock_stack.pop()

    # -------------------------------------------------------------- #
    # Locks and calls
    # -------------------------------------------------------------- #
    def _lock_key(self, expr: ast.expr) -> str | None:
        """Canonical lock identity for a ``with`` context expression."""
        if isinstance(expr, ast.Call):  # e.g. ``with lock_for(x):`` — opaque
            return None
        if isinstance(expr, ast.Name):
            if _is_lock_name(expr.id):
                return f"{self.info.name}:{expr.id}"
            bound = self.env.get(expr.id)
            if bound is not None and bound.kind == "class" and bound.name is not None:
                if _is_lock_name(bound.name.lower()):
                    return f"{self.info.name}:{expr.id}"
            return None
        if isinstance(expr, ast.Attribute) and _is_lock_name(expr.attr):
            owner = self._type_of(expr.value)
            if owner is not None and owner.kind == "class" and owner.name is not None:
                return f"{owner.name}.{expr.attr}"
            dotted = dotted_name(expr)
            if dotted is not None:
                return f"{self.info.name}:{dotted}"
        return None

    def _record_call(self, node: ast.Call) -> None:
        func = node.func
        dotted: str | None = None
        target: str | None = None
        receiver_class: str | None = None
        method: str | None = None
        plain = dotted_name(func)
        if plain is not None:
            dotted = self._resolve_symbol(plain)
        if isinstance(func, ast.Name):
            target = self._resolve_function_target(func.id)
        elif isinstance(func, ast.Attribute):
            method = func.attr
            owner = self._type_of(func.value)
            if owner is not None and owner.kind == "class" and owner.name is not None:
                receiver_class = owner.name
                cls_info = self.model.resolve_class(owner.name, self.info.name)
                if cls_info is not None:
                    resolved = self.model.class_method(cls_info, func.attr)
                    if resolved is not None:
                        found_cls, _ = resolved
                        target = f"{found_cls.module}:{found_cls.name}.{func.attr}"
        self.calls.append(
            CallSite(
                line=node.lineno,
                dotted=dotted,
                target=target,
                receiver_class=receiver_class,
                method=method,
                held=tuple(self.lock_stack),
            )
        )

    def _resolve_symbol(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        origin = self.local_symbols.get(head)
        if origin is not None:
            return f"{origin}.{rest}" if rest else origin
        return self.model.resolve_dotted(self.info.name, dotted)

    def _resolve_function_target(self, name: str) -> str | None:
        key = self.info.functions.get(name)
        if key is not None:
            return key
        origin = self._resolve_symbol(name)
        owner = self.model._project_module(origin)
        if owner is not None and owner != origin:
            func_name = origin[len(owner) + 1 :]
            if "." not in func_name and func_name in self.model.modules[owner].functions:
                return self.model.modules[owner].functions[func_name]
        return None

    # -------------------------------------------------------------- #
    # Type inference
    # -------------------------------------------------------------- #
    def _record_assignment(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        inferred = self._type_of(value)
        if inferred is not None:
            self.env[target.id] = inferred

    def _type_of(self, expr: ast.expr, depth: int = 0) -> TypeInfo | None:
        if depth > 6:
            return None
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.cls is not None:
                return TypeInfo(kind="class", name=self.cls)
            return self.env.get(expr.id)
        if isinstance(expr, ast.Await):
            return self._type_of(expr.value, depth + 1)
        if isinstance(expr, ast.IfExp):
            return self._type_of(expr.body, depth + 1) or self._type_of(expr.orelse, depth + 1)
        if isinstance(expr, ast.Attribute):
            owner = self._type_of(expr.value, depth + 1)
            if owner is not None and owner.kind == "class" and owner.name is not None:
                cls_info = self.model.resolve_class(owner.name, self.info.name)
                if cls_info is not None:
                    return cls_info.attr_types.get(expr.attr)
            return None
        if isinstance(expr, ast.Subscript):
            container = self._type_of(expr.value, depth + 1)
            if container is not None and container.kind in ("dict", "list"):
                return container.item
            return None
        if isinstance(expr, ast.Call):
            return self._call_result_type(expr, depth)
        return None

    def _call_result_type(self, expr: ast.Call, depth: int) -> TypeInfo | None:
        func = expr.func
        if isinstance(func, ast.Name):
            cls_info = self.model.resolve_class(func.id, self.info.name)
            if cls_info is not None:
                return TypeInfo(kind="class", name=cls_info.name)
            key = self._resolve_function_target(func.id)
            if key is not None:
                return _annotation_type(self.model.functions[key].node.returns)
            return None
        if isinstance(func, ast.Attribute):
            # Container access methods on typed containers: dict.pop/get,
            # list.pop return the element type.
            owner = self._type_of(func.value, depth + 1)
            if owner is not None:
                if owner.kind in ("dict", "list") and func.attr in ("pop", "get", "setdefault"):
                    return owner.item
                if owner.kind == "class" and owner.name is not None:
                    cls_info = self.model.resolve_class(owner.name, self.info.name)
                    if cls_info is not None:
                        resolved = self.model.class_method(cls_info, func.attr)
                        if resolved is not None:
                            _, node = resolved
                            return _annotation_type(node.returns)
            dotted = dotted_name(func)
            if dotted is not None:
                resolved_dotted = self._resolve_symbol(dotted)
                owner_mod = self.model._project_module(resolved_dotted)
                if owner_mod is not None and owner_mod != resolved_dotted:
                    tail = resolved_dotted[len(owner_mod) + 1 :]
                    if "." not in tail:
                        mod = self.model.modules[owner_mod]
                        key = mod.functions.get(tail)
                        if key is not None:
                            return _annotation_type(self.model.functions[key].node.returns)
                        cls_key = mod.classes.get(tail)
                        if cls_key is not None:
                            return TypeInfo(kind="class", name=tail)
        return None


class ProjectRule(Rule):
    """A rule that checks the whole-program model instead of one module.

    Subclasses implement :meth:`check_project`; the per-file :meth:`check`
    hook is a no-op.  Findings are anchored to ``file:line`` like per-file
    findings and pass through the same scope filtering (on the finding's
    path) and inline-suppression machinery.
    """

    def check(self, module: ModuleSource) -> Iterable[Finding]:  # pragma: no cover
        return ()

    def check_project(self, project: ProjectModel) -> Iterable[Finding]:
        raise NotImplementedError

    def finding_at(self, relpath: str, line: int, message: str) -> Finding:
        return Finding(relpath=relpath, line=line, code=self.code, message=message)
