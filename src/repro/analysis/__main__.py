"""The CLI: ``python -m repro.analysis [paths …]``.

Runs the project-invariant rules over the given files/directories (default:
``src benchmarks examples scripts``, whichever exist under the current
directory) with the repository scoping config, prints findings as
``file:line CODE message``, and exits non-zero when any non-suppressed
finding remains.  ``--stats`` prints per-rule counts even on a clean run;
``--select`` restricts the pass to a subset of rules; ``--format json``
emits a machine-readable report; ``--warn-unused-suppressions`` turns stale
``# repro-lint: disable`` comments into RPR099 findings; and
``--restrict-report`` limits *reporting* (not analysis) to the given files.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from .config import PROJECT_SCOPES
from .framework import Analyzer, all_rules, rules_for

DEFAULT_PATHS = ("src", "benchmarks", "examples", "scripts")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Check the repository's architectural invariants (RPR rules).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: src benchmarks examples scripts)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all registered rules)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="root the scoping globs and rendered paths are relative to (default: cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    parser.add_argument(
        "--stats", action="store_true", help="print per-rule finding counts"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format: human-readable text (default) or stable JSON",
    )
    parser.add_argument(
        "--warn-unused-suppressions",
        action="store_true",
        help="report stale '# repro-lint: disable' comments as RPR099 findings",
    )
    parser.add_argument(
        "--restrict-report",
        metavar="RELPATHS",
        help=(
            "comma-separated root-relative paths; the analysis still runs over "
            "everything (whole-program rules see the full tree) but only "
            "findings in these files are reported (used by "
            "scripts/lint_invariants.py --changed-only)"
        ),
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code} {rule.name}: {rule.rationale}")
        return 0

    try:
        rules = rules_for(args.select.split(",")) if args.select else all_rules()
    except ValueError as exc:
        parser.error(str(exc))

    root = (args.root or Path.cwd()).resolve()
    paths = args.paths or [
        root / name for name in DEFAULT_PATHS if (root / name).is_dir()
    ]
    if not paths:
        parser.error("no paths given and none of the default directories exist")

    analyzer = Analyzer(
        rules=rules,
        scopes=PROJECT_SCOPES,
        root=root,
        warn_unused_suppressions=args.warn_unused_suppressions,
    )
    report = analyzer.analyze_paths(paths)
    if args.restrict_report is not None:
        allowed = [part.strip() for part in args.restrict_report.split(",") if part.strip()]
        report = report.restricted_to(allowed)
    if args.format == "json":
        print(report.to_json())
        return 0 if report.ok else 1
    for finding in report.findings:
        print(finding.render())
    if args.stats:
        counts = report.counts_by_rule()
        for rule in rules:
            print(f"{rule.code} ({rule.name}): {counts.get(rule.code, 0)} finding(s)")
    print(
        f"checked {report.files_checked} file(s): {len(report.findings)} finding(s), "
        f"{report.suppressed} suppressed"
    )
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
