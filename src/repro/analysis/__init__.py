"""Project-invariant static analysis: ``python -m repro.analysis``.

An AST-based lint pass that encodes the architectural invariants of this
repository as named rules (``RPR001``…): sans-IO purity of the inference
core, lock discipline in the serving tier, lazy-table discipline, numpy
containment, seeded RNG, wire-registry completeness, executor discipline,
the transport monopoly — and, since the whole-program pass, the import-layer
DAG, lock-order acyclicity, blocking-in-async and resource lifecycle.  See
``docs/static-analysis.md`` for the rule catalog,
:mod:`repro.analysis.framework` for the per-file machinery, and
:mod:`repro.analysis.project` for the :class:`ProjectModel` the cross-module
rules check.
"""

from .config import PROJECT_SCOPES
from .framework import (
    UNUSED_SUPPRESSION_CODE,
    Analyzer,
    FileAnalysis,
    Finding,
    ModuleSource,
    Report,
    Rule,
    Scope,
    all_rules,
    register_rule,
    rules_for,
)
from .project import ProjectModel, ProjectRule

__all__ = [
    "Analyzer",
    "FileAnalysis",
    "Finding",
    "ModuleSource",
    "PROJECT_SCOPES",
    "ProjectModel",
    "ProjectRule",
    "Report",
    "Rule",
    "Scope",
    "UNUSED_SUPPRESSION_CODE",
    "all_rules",
    "register_rule",
    "rules_for",
]
