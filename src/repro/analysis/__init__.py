"""Project-invariant static analysis: ``python -m repro.analysis``.

An AST-based lint pass that encodes the architectural invariants of this
repository as named rules (``RPR001``…): sans-IO purity of the inference
core, lock discipline in the serving tier, lazy-table discipline, numpy
containment, seeded RNG, and wire-registry completeness.  See
``docs/static-analysis.md`` for the rule catalog and
:mod:`repro.analysis.framework` for the machinery.
"""

from .config import PROJECT_SCOPES
from .framework import (
    Analyzer,
    Finding,
    ModuleSource,
    Report,
    Rule,
    Scope,
    all_rules,
    register_rule,
    rules_for,
)

__all__ = [
    "Analyzer",
    "Finding",
    "ModuleSource",
    "PROJECT_SCOPES",
    "Report",
    "Rule",
    "Scope",
    "all_rules",
    "register_rule",
    "rules_for",
]
