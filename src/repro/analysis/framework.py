"""The invariant-lint framework: rules, scoping, suppressions, reports.

``repro.analysis`` is a *project-specific* static analyzer: where ruff checks
Python-the-language, this package checks repro-the-architecture.  Each
:class:`Rule` encodes one invariant the codebase relies on (sans-IO purity of
the inference core, lock discipline in the serving tier, never materializing
lazy cross products, …) and reports violations as :class:`Finding`\\ s with a
stable ``file:line CODE message`` rendering.

The moving parts:

* :class:`Rule` — one named check (``RPR###``) over a parsed module.  Rules
  self-register via :func:`register_rule` at import time; the live registry
  is :func:`all_rules`.
* :class:`Scope` — glob patterns deciding which files a rule applies to.
  Every rule carries a generic default; the *project* scoping lives in
  :mod:`repro.analysis.config` so per-file carve-outs (e.g. the CSV reader is
  allowed to read files) are declared in one reviewed place.
* Inline suppressions — ``# repro-lint: disable=RPR001`` (comma-separate for
  several codes, ``disable=all`` for everything) on the offending line keeps
  a *reviewed* exception out of the report.  Suppressions are per-line, not
  per-file: a blanket opt-out belongs in the scoping config instead.
* :class:`Analyzer` / :class:`Report` — walk files, run in-scope rules,
  filter suppressed findings, and aggregate per-rule counts.
"""

from __future__ import annotations

import abc
import ast
import fnmatch
import re
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

#: Code used for files the analyzer cannot parse at all.
SYNTAX_ERROR_CODE = "RPR000"

#: ``# repro-lint: disable=RPR001[,RPR002…]``; free-form reason text may follow.
_SUPPRESSION = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    relpath: str
    line: int
    code: str
    message: str

    def render(self) -> str:
        """The stable ``file:line CODE message`` form CI and editors parse."""
        return f"{self.relpath}:{self.line} {self.code} {self.message}"


@dataclass(frozen=True)
class Scope:
    """Which files (by posix path relative to the analysis root) a rule sees.

    Patterns are :mod:`fnmatch` globs where ``*`` crosses ``/`` boundaries,
    so ``src/repro/core/*`` covers the whole subtree.  A file is in scope
    when it matches any ``include`` pattern and no ``exclude`` pattern.
    """

    include: tuple[str, ...] = ("*",)
    exclude: tuple[str, ...] = ()

    def matches(self, relpath: str) -> bool:
        if not any(fnmatch.fnmatch(relpath, pattern) for pattern in self.include):
            return False
        return not any(fnmatch.fnmatch(relpath, pattern) for pattern in self.exclude)


@dataclass(frozen=True)
class ModuleSource:
    """A parsed module plus everything a rule may want to look at."""

    path: Path
    relpath: str
    text: str
    tree: ast.Module
    lines: tuple[str, ...] = field(repr=False, default=())

    @classmethod
    def parse(cls, path: Path, relpath: str, text: str) -> ModuleSource:
        tree = ast.parse(text, filename=str(path))
        return cls(
            path=path,
            relpath=relpath,
            text=text,
            tree=tree,
            lines=tuple(text.splitlines()),
        )

    def suppressions(self) -> dict[int, frozenset[str]]:
        """``line -> suppressed codes`` from ``# repro-lint: disable=…`` comments.

        A trailing comment suppresses findings on its own line; a standalone
        comment line (nothing but the comment) suppresses the *next* line,
        for call sites too long to carry the comment inline.
        """
        table: dict[int, frozenset[str]] = {}
        for number, line in enumerate(self.lines, 1):
            match = _SUPPRESSION.search(line)
            if not match:
                continue
            codes = frozenset(
                part.strip().upper() for part in match.group(1).split(",") if part.strip()
            )
            if not codes:
                continue
            target = number + 1 if line.strip().startswith("#") else number
            table[target] = table.get(target, frozenset()) | codes
        return table


class Rule(abc.ABC):
    """One invariant check.  Subclasses set the class attributes and ``check``."""

    #: Stable finding code, ``RPR`` + three digits.
    code: str = ""
    #: Short kebab-case rule name (shown by ``--list-rules``).
    name: str = ""
    #: One-line statement of the invariant the rule enforces.
    rationale: str = ""
    #: Files the rule applies to when the config carries no override.
    default_scope: Scope = Scope()

    @abc.abstractmethod
    def check(self, module: ModuleSource) -> Iterable[Finding]:
        """Yield every violation of the invariant in the module."""

    def finding(self, module: ModuleSource, node: ast.AST, message: str) -> Finding:
        """A finding anchored at an AST node of the module."""
        return Finding(
            relpath=module.relpath,
            line=getattr(node, "lineno", 1),
            code=self.code,
            message=message,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry (import-time)."""
    if not cls.code or not re.fullmatch(r"RPR\d{3}", cls.code):
        raise ValueError(f"rule {cls.__name__} needs a code of the form RPR###")
    if cls.code in _REGISTRY and _REGISTRY[cls.code] is not cls:
        raise ValueError(f"rule code {cls.code} is already registered")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, ordered by code.

    Importing :mod:`repro.analysis.rules` populates the registry; this
    function triggers that import so callers never see an empty registry.
    """
    from . import rules as _rules  # noqa: F401 - import populates the registry

    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def rules_for(codes: Iterable[str]) -> list[Rule]:
    """Instances of the selected rules; unknown codes raise ``ValueError``."""
    available = {rule.code: rule for rule in all_rules()}
    selected = []
    for code in codes:
        normalized = code.strip().upper()
        if normalized not in available:
            known = ", ".join(sorted(available))
            raise ValueError(f"unknown rule code {code!r}; known codes: {known}")
        selected.append(available[normalized])
    return selected


@dataclass
class Report:
    """The outcome of one analyzer run."""

    findings: list[Finding]
    files_checked: int
    suppressed: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))

    def render(self) -> str:
        lines = [finding.render() for finding in self.findings]
        summary = (
            f"checked {self.files_checked} file(s): "
            f"{len(self.findings)} finding(s), {self.suppressed} suppressed"
        )
        return "\n".join([*lines, summary])


class Analyzer:
    """Runs a set of rules over files, honouring scoping and suppressions.

    ``root`` anchors the relative paths the scoping globs (and the rendered
    findings) use; it defaults to the current working directory, which is the
    repository root in CI and under ``scripts/lint_invariants.py``.
    """

    def __init__(
        self,
        rules: Sequence[Rule] | None = None,
        scopes: Mapping[str, Scope] | None = None,
        root: Path | None = None,
    ) -> None:
        self.rules = list(rules) if rules is not None else all_rules()
        self.scopes = dict(scopes) if scopes is not None else {}
        self.root = (root or Path.cwd()).resolve()

    def scope_for(self, rule: Rule) -> Scope:
        return self.scopes.get(rule.code, rule.default_scope)

    def _relpath(self, path: Path) -> str:
        resolved = path.resolve()
        try:
            return resolved.relative_to(self.root).as_posix()
        except ValueError:
            return resolved.as_posix()

    def analyze_file(self, path: Path) -> tuple[list[Finding], int]:
        """``(unsuppressed findings, suppressed count)`` for one file."""
        relpath = self._relpath(path)
        text = path.read_text(encoding="utf-8")
        try:
            module = ModuleSource.parse(path, relpath, text)
        except SyntaxError as exc:
            finding = Finding(
                relpath=relpath,
                line=exc.lineno or 1,
                code=SYNTAX_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
            )
            return [finding], 0
        raw: list[Finding] = []
        for rule in self.rules:
            if self.scope_for(rule).matches(relpath):
                raw.extend(rule.check(module))
        suppressions = module.suppressions() if raw else {}
        kept: list[Finding] = []
        suppressed = 0
        for finding in raw:
            codes = suppressions.get(finding.line, frozenset())
            if finding.code in codes or "ALL" in codes:
                suppressed += 1
            else:
                kept.append(finding)
        return kept, suppressed

    def analyze_paths(self, paths: Iterable[Path | str]) -> Report:
        """Analyze files and directory trees; directories are walked recursively."""
        findings: list[Finding] = []
        files = 0
        suppressed = 0
        for path in self._collect(paths):
            kept, skipped = self.analyze_file(path)
            findings.extend(kept)
            suppressed += skipped
            files += 1
        findings.sort(key=lambda f: (f.relpath, f.line, f.code))
        return Report(findings=findings, files_checked=files, suppressed=suppressed)

    def _collect(self, paths: Iterable[Path | str]) -> Iterator[Path]:
        seen: set[Path] = set()
        for given in paths:
            base = Path(given)
            if base.is_dir():
                candidates = sorted(
                    child
                    for child in base.rglob("*.py")
                    if "__pycache__" not in child.parts
                    and not any(part.startswith(".") for part in child.parts)
                )
            else:
                candidates = [base]
            for candidate in candidates:
                resolved = candidate.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    yield candidate


def dotted_name(node: ast.AST) -> str | None:
    """The dotted form of a ``Name``/``Attribute`` chain, or ``None``.

    ``ast.Attribute(value=Name('time'), attr='sleep')`` renders as
    ``"time.sleep"``; chains containing calls or subscripts render as
    ``None`` (they are not plain module paths).  Shared by several rules.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
