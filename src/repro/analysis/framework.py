"""The invariant-lint framework: rules, scoping, suppressions, reports.

``repro.analysis`` is a *project-specific* static analyzer: where ruff checks
Python-the-language, this package checks repro-the-architecture.  Each
:class:`Rule` encodes one invariant the codebase relies on (sans-IO purity of
the inference core, lock discipline in the serving tier, never materializing
lazy cross products, …) and reports violations as :class:`Finding`\\ s with a
stable ``file:line CODE message`` rendering.

The moving parts:

* :class:`Rule` — one named check (``RPR###``) over a parsed module.  Rules
  self-register via :func:`register_rule` at import time; the live registry
  is :func:`all_rules`.
* :class:`Scope` — glob patterns deciding which files a rule applies to.
  Every rule carries a generic default; the *project* scoping lives in
  :mod:`repro.analysis.config` so per-file carve-outs (e.g. the CSV reader is
  allowed to read files) are declared in one reviewed place.
* Inline suppressions — ``# repro-lint: disable=RPR001`` (comma-separate for
  several codes, ``disable=all`` for everything) on the offending line keeps
  a *reviewed* exception out of the report.  Suppressions are per-line, not
  per-file: a blanket opt-out belongs in the scoping config instead.
* :class:`Analyzer` / :class:`Report` — walk files, run in-scope rules,
  filter suppressed findings, and aggregate per-rule counts.
"""

from __future__ import annotations

import abc
import ast
import fnmatch
import io
import json
import re
import tokenize
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

#: Code used for files the analyzer cannot parse at all.
SYNTAX_ERROR_CODE = "RPR000"

#: Code used for ``# repro-lint: disable`` comments that suppress nothing.
#: Emitted only under ``--warn-unused-suppressions``; like RPR000 it is a
#: framework channel, not a registered rule.
UNUSED_SUPPRESSION_CODE = "RPR099"

#: ``# repro-lint: disable=RPR001[,RPR002…]``; free-form reason text may follow.
#: Matched against the *start* of genuine comment tokens only, so prose that
#: quotes the directive (docstrings, ``#:`` attribute comments) never counts
#: as a suppression — nor, therefore, as an unused one.
_SUPPRESSION = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    relpath: str
    line: int
    code: str
    message: str

    def render(self) -> str:
        """The stable ``file:line CODE message`` form CI and editors parse."""
        return f"{self.relpath}:{self.line} {self.code} {self.message}"


@dataclass(frozen=True)
class Scope:
    """Which files (by posix path relative to the analysis root) a rule sees.

    Patterns are :mod:`fnmatch` globs where ``*`` crosses ``/`` boundaries,
    so ``src/repro/core/*`` covers the whole subtree.  A file is in scope
    when it matches any ``include`` pattern and no ``exclude`` pattern.
    """

    include: tuple[str, ...] = ("*",)
    exclude: tuple[str, ...] = ()

    def matches(self, relpath: str) -> bool:
        if not any(fnmatch.fnmatch(relpath, pattern) for pattern in self.include):
            return False
        return not any(fnmatch.fnmatch(relpath, pattern) for pattern in self.exclude)


@dataclass(frozen=True)
class SuppressionComment:
    """One ``# repro-lint: disable=…`` comment in a module.

    ``comment_line`` is where the comment sits (where an unused-suppression
    warning anchors); ``target_line`` is the line whose findings it
    suppresses — the same line for a trailing comment, the next line for a
    standalone one.
    """

    comment_line: int
    target_line: int
    codes: frozenset[str]


@dataclass(frozen=True)
class ModuleSource:
    """A parsed module plus everything a rule may want to look at."""

    path: Path
    relpath: str
    text: str
    tree: ast.Module
    lines: tuple[str, ...] = field(repr=False, default=())

    @classmethod
    def parse(cls, path: Path, relpath: str, text: str) -> ModuleSource:
        tree = ast.parse(text, filename=str(path))
        return cls(
            path=path,
            relpath=relpath,
            text=text,
            tree=tree,
            lines=tuple(text.splitlines()),
        )

    def suppression_comments(self) -> tuple[SuppressionComment, ...]:
        """Every ``# repro-lint: disable=…`` comment, with its target line.

        A trailing comment suppresses findings on its own line; a standalone
        comment line (nothing but the comment) suppresses the *next* line,
        for call sites too long to carry the comment inline.

        Only real comment *tokens* whose text begins with the directive
        qualify — a docstring describing the syntax, or a comment merely
        mentioning it mid-sentence, is not a suppression.
        """
        comments: list[SuppressionComment] = []
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.text).readline))
        except tokenize.TokenError:  # pragma: no cover - source already parsed
            return ()
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION.match(token.string)
            if not match:
                continue
            codes = frozenset(
                part.strip().upper() for part in match.group(1).split(",") if part.strip()
            )
            if not codes:
                continue
            number = token.start[0]
            standalone = token.line[: token.start[1]].strip() == ""
            target = number + 1 if standalone else number
            comments.append(
                SuppressionComment(comment_line=number, target_line=target, codes=codes)
            )
        return tuple(comments)

    def suppressions(self) -> dict[int, frozenset[str]]:
        """``line -> suppressed codes``, merged over all comments."""
        table: dict[int, frozenset[str]] = {}
        for comment in self.suppression_comments():
            table[comment.target_line] = (
                table.get(comment.target_line, frozenset()) | comment.codes
            )
        return table


class Rule(abc.ABC):
    """One invariant check.  Subclasses set the class attributes and ``check``."""

    #: Stable finding code, ``RPR`` + three digits.
    code: str = ""
    #: Short kebab-case rule name (shown by ``--list-rules``).
    name: str = ""
    #: One-line statement of the invariant the rule enforces.
    rationale: str = ""
    #: Files the rule applies to when the config carries no override.
    default_scope: Scope = Scope()

    @abc.abstractmethod
    def check(self, module: ModuleSource) -> Iterable[Finding]:
        """Yield every violation of the invariant in the module."""

    def finding(self, module: ModuleSource, node: ast.AST, message: str) -> Finding:
        """A finding anchored at an AST node of the module."""
        return Finding(
            relpath=module.relpath,
            line=getattr(node, "lineno", 1),
            code=self.code,
            message=message,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry (import-time)."""
    if not cls.code or not re.fullmatch(r"RPR\d{3}", cls.code):
        raise ValueError(f"rule {cls.__name__} needs a code of the form RPR###")
    if cls.code in _REGISTRY and _REGISTRY[cls.code] is not cls:
        raise ValueError(f"rule code {cls.code} is already registered")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, ordered by code.

    Importing :mod:`repro.analysis.rules` populates the registry; this
    function triggers that import so callers never see an empty registry.
    """
    from . import rules as _rules  # noqa: F401 - import populates the registry

    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def rules_for(codes: Iterable[str]) -> list[Rule]:
    """Instances of the selected rules; unknown codes raise ``ValueError``."""
    available = {rule.code: rule for rule in all_rules()}
    selected = []
    for code in codes:
        normalized = code.strip().upper()
        if normalized not in available:
            known = ", ".join(sorted(available))
            raise ValueError(f"unknown rule code {code!r}; known codes: {known}")
        selected.append(available[normalized])
    return selected


@dataclass
class Report:
    """The outcome of one analyzer run."""

    findings: list[Finding]
    files_checked: int
    suppressed: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))

    def render(self) -> str:
        lines = [finding.render() for finding in self.findings]
        summary = (
            f"checked {self.files_checked} file(s): "
            f"{len(self.findings)} finding(s), {self.suppressed} suppressed"
        )
        return "\n".join([*lines, summary])

    def to_json(self) -> str:
        """A stable machine-readable form for CI annotations (``--format json``)."""
        payload = {
            "version": 1,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "counts_by_rule": self.counts_by_rule(),
            "findings": [
                {
                    "path": finding.relpath,
                    "line": finding.line,
                    "code": finding.code,
                    "message": finding.message,
                }
                for finding in self.findings
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def restricted_to(self, relpaths: Iterable[str]) -> Report:
        """A copy reporting only findings in the given files.

        Backs ``scripts/lint_invariants.py --changed-only``: the analysis
        (including whole-program rules) still ran over everything; only the
        *reporting* narrows to the changed files.
        """
        allowed = set(relpaths)
        return Report(
            findings=[f for f in self.findings if f.relpath in allowed],
            files_checked=self.files_checked,
            suppressed=self.suppressed,
        )


@dataclass
class FileAnalysis:
    """The per-file outcome: kept findings, suppression usage, stale comments."""

    findings: list[Finding]
    suppressed: int
    unused_suppressions: list[Finding]


class Analyzer:
    """Runs a set of rules over files, honouring scoping and suppressions.

    ``root`` anchors the relative paths the scoping globs (and the rendered
    findings) use; it defaults to the current working directory, which is the
    repository root in CI and under ``scripts/lint_invariants.py``.

    ``warn_unused_suppressions`` turns stale ``# repro-lint: disable``
    comments (ones that suppress no finding) into ``RPR099`` findings, so a
    carve-out whose reason disappeared fails the lint instead of silently
    rotting.
    """

    def __init__(
        self,
        rules: Sequence[Rule] | None = None,
        scopes: Mapping[str, Scope] | None = None,
        root: Path | None = None,
        warn_unused_suppressions: bool = False,
    ) -> None:
        self.rules = list(rules) if rules is not None else all_rules()
        self.scopes = dict(scopes) if scopes is not None else {}
        self.root = (root or Path.cwd()).resolve()
        self.warn_unused_suppressions = warn_unused_suppressions

    def scope_for(self, rule: Rule) -> Scope:
        return self.scopes.get(rule.code, rule.default_scope)

    def _relpath(self, path: Path) -> str:
        resolved = path.resolve()
        try:
            return resolved.relative_to(self.root).as_posix()
        except ValueError:
            return resolved.as_posix()

    def _split_rules(self) -> tuple[list[Rule], list[Rule]]:
        from .project import ProjectRule

        file_rules = [r for r in self.rules if not isinstance(r, ProjectRule)]
        project_rules = [r for r in self.rules if isinstance(r, ProjectRule)]
        return file_rules, project_rules

    def _parse(self, path: Path, relpath: str) -> ModuleSource | Finding:
        text = path.read_text(encoding="utf-8")
        try:
            return ModuleSource.parse(path, relpath, text)
        except SyntaxError as exc:
            return Finding(
                relpath=relpath,
                line=exc.lineno or 1,
                code=SYNTAX_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
            )

    @staticmethod
    def _apply_suppressions(
        module: ModuleSource, raw: list[Finding]
    ) -> FileAnalysis:
        """Filter findings through the module's suppression comments.

        Suppressions are parsed *unconditionally* — also for files with no
        raw findings — so a stale comment in a clean file is still seen and
        reported as unused.
        """
        comments = module.suppression_comments()
        used: set[int] = set()
        kept: list[Finding] = []
        suppressed = 0
        for finding in raw:
            matching = [
                index
                for index, comment in enumerate(comments)
                if comment.target_line == finding.line
                and (finding.code in comment.codes or "ALL" in comment.codes)
            ]
            if matching:
                suppressed += 1
                used.update(matching)
            else:
                kept.append(finding)
        unused = [
            Finding(
                relpath=module.relpath,
                line=comment.comment_line,
                code=UNUSED_SUPPRESSION_CODE,
                message=(
                    "unused suppression: disables "
                    + ", ".join(sorted(comment.codes))
                    + " but suppresses no finding"
                ),
            )
            for index, comment in enumerate(comments)
            if index not in used
        ]
        return FileAnalysis(findings=kept, suppressed=suppressed, unused_suppressions=unused)

    def analyze_file(self, path: Path) -> FileAnalysis:
        """Per-file rules over one file (project rules need :meth:`analyze_paths`)."""
        relpath = self._relpath(path)
        parsed = self._parse(path, relpath)
        if isinstance(parsed, Finding):
            return FileAnalysis(findings=[parsed], suppressed=0, unused_suppressions=[])
        file_rules, _ = self._split_rules()
        raw: list[Finding] = []
        for rule in file_rules:
            if self.scope_for(rule).matches(relpath):
                raw.extend(rule.check(parsed))
        return self._apply_suppressions(parsed, raw)

    def analyze_paths(self, paths: Iterable[Path | str]) -> Report:
        """Analyze files and directory trees; directories are walked recursively.

        Runs in two phases: per-file rules while parsing each module, then —
        when any :class:`~repro.analysis.project.ProjectRule` is selected — a
        whole-program pass over the :class:`~repro.analysis.project.ProjectModel`
        built from every successfully parsed module.  Project-rule findings
        are filtered by the rule's scope (matched against the finding's path)
        and by the same inline suppressions as per-file findings.
        """
        file_rules, project_rules = self._split_rules()
        modules: dict[str, ModuleSource] = {}
        raw_by_file: dict[str, list[Finding]] = {}
        findings: list[Finding] = []
        files = 0
        for path in self._collect(paths):
            files += 1
            relpath = self._relpath(path)
            parsed = self._parse(path, relpath)
            if isinstance(parsed, Finding):
                findings.append(parsed)
                continue
            modules[relpath] = parsed
            raw = raw_by_file.setdefault(relpath, [])
            for rule in file_rules:
                if self.scope_for(rule).matches(relpath):
                    raw.extend(rule.check(parsed))
        if project_rules and modules:
            from .project import ProjectModel

            model = ProjectModel.build(modules.values(), self.root)
            for rule in project_rules:
                scope = self.scope_for(rule)
                for finding in rule.check_project(model):
                    if scope.matches(finding.relpath):
                        raw_by_file.setdefault(finding.relpath, []).append(finding)
        suppressed = 0
        for relpath, module in modules.items():
            analysis = self._apply_suppressions(module, raw_by_file.get(relpath, []))
            findings.extend(analysis.findings)
            suppressed += analysis.suppressed
            if self.warn_unused_suppressions:
                findings.extend(analysis.unused_suppressions)
        findings.sort(key=lambda f: (f.relpath, f.line, f.code))
        return Report(findings=findings, files_checked=files, suppressed=suppressed)

    def _collect(self, paths: Iterable[Path | str]) -> Iterator[Path]:
        seen: set[Path] = set()
        for given in paths:
            base = Path(given)
            if base.is_dir():
                candidates = sorted(
                    child
                    for child in base.rglob("*.py")
                    if "__pycache__" not in child.parts
                    and not any(part.startswith(".") for part in child.parts)
                )
            else:
                candidates = [base]
            for candidate in candidates:
                resolved = candidate.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    yield candidate


def dotted_name(node: ast.AST) -> str | None:
    """The dotted form of a ``Name``/``Attribute`` chain, or ``None``.

    ``ast.Attribute(value=Name('time'), attr='sleep')`` renders as
    ``"time.sleep"``; chains containing calls or subscripts render as
    ``None`` (they are not plain module paths).  Shared by several rules.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
