"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file only exists so
that fully offline environments (no access to PyPI for build-isolation
requirements, no ``wheel`` package) can still perform a legacy editable
install with ``pip install -e .``.
"""

from setuptools import setup

setup()
